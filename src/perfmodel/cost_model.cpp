#include "perfmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace spmm::model {

namespace {

// Bench configuration element sizes: double values, int32 indices.
constexpr double kValueBytes = 8.0;
constexpr double kIndexBytes = 4.0;

// --- calibration constants -------------------------------------------------
// Vectorization quality multipliers by kernel form (fraction of the
// format's SIMD achievement the form retains).
constexpr double kVecPlain = 0.70;      // runtime-k, aliasing value load
constexpr double kVecOptimized = 1.0;   // template-k + restrict (Study 9)
constexpr double kVecTranspose = 0.50;  // strided Bᵀ gathers, dot-form
constexpr double kVecVendor = 1.0;      // vendor panel kernels

// B-row reuse: maximum achievable hit rate and the cache-line inflation
// cap for transpose gathers (8 doubles per 64-byte line).
constexpr double kMaxHitRate = 0.60;
constexpr double kLineInflation = 8.0;

// SMT: blocked (latency-bound) formats convert extra hardware threads
// into throughput far better than streaming ones (paper §6.1).
constexpr double kSmtBlockedBonus = 1.6;
constexpr double kSmtStreamingPenalty = 0.30;

// Fraction of stored-entry B traffic that also costs latency stalls when
// the working set spills the LLC (raises effective traffic slightly for
// scattered matrices).
constexpr double kSpillPenalty = 1.15;
// ----------------------------------------------------------------------------

/// Parallel-region efficiency by format: COO's static row-aligned
/// partition has the least scheduling overhead (why the paper sees COO
/// lead parallel runs on Arm); CSR's dynamic row schedule pays the most.
double parallel_eff(Format f) {
  switch (f) {
    case Format::kCoo: return 1.00;
    case Format::kCsr: return 0.88;
    case Format::kEll: return 0.97;
    case Format::kBcsr: return 0.94;
    case Format::kBell: return 0.95;
    case Format::kSellC: return 0.95;
    case Format::kHyb: return 0.96;
    // nnz-balanced tiles: near-perfect load balance (the format's point).
    case Format::kCsr5: return 0.99;
  }
  return 0.9;
}

bool is_blocked(Format f) {
  return f == Format::kEll || f == Format::kBcsr || f == Format::kBell ||
         f == Format::kSellC || f == Format::kHyb;
}

double bcsr_fill_for(const ModelInput& in, int block_size) {
  auto it = in.bcsr_fill.find(block_size);
  if (it != in.bcsr_fill.end()) return it->second;
  // Fall back to an interpolation on the densest known fill: fill decays
  // roughly like (b0/b)^d with d≈1 for FEM-like matrices.
  if (!in.bcsr_fill.empty()) {
    const auto& [b0, f0] = *in.bcsr_fill.begin();
    const double d =
        static_cast<double>(b0) / static_cast<double>(block_size);
    return std::clamp(f0 * d, 0.01, 1.0);
  }
  return 0.5;
}

}  // namespace

double stored_entries(const ModelInput& in, Format f, int block_size) {
  const auto& p = in.props;
  const double nnz = static_cast<double>(p.nnz);
  switch (f) {
    case Format::kCoo:
    case Format::kCsr:
      return nnz;
    case Format::kEll:
      return static_cast<double>(p.rows) * static_cast<double>(p.max_row_nnz);
    case Format::kBcsr:
      return nnz / std::max(0.01, bcsr_fill_for(in, block_size));
    case Format::kBell: {
      // Group-local widths follow the local row mix: padding scales with
      // the row-count dispersion, bounded by ELL's padding.
      const double cv = p.avg_row_nnz > 0
                            ? p.row_nnz_stddev / p.avg_row_nnz
                            : 0.0;
      const double pad = std::min(p.ell_padding_ratio, 1.0 + 0.5 * cv);
      return nnz * pad;
    }
    case Format::kSellC: {
      // σ-sorting nearly eliminates chunk padding.
      const double cv = p.avg_row_nnz > 0
                            ? p.row_nnz_stddev / p.avg_row_nnz
                            : 0.0;
      const double pad = std::min(p.ell_padding_ratio, 1.0 + 0.1 * cv);
      return nnz * pad;
    }
    case Format::kHyb:
      // The width heuristic bounds the ELL region's padding; the tail
      // holds the spill, so storage stays within ~15% of nnz.
      return nnz * std::min(p.ell_padding_ratio, 1.15);
    case Format::kCsr5:
      return nnz;  // no padding: CSR arrays + one index per tile
  }
  return nnz;
}

namespace {

/// Per-format A-array bytes per *stored* entry (indices + values),
/// including row metadata amortized over entries.
double a_bytes_per_entry(const ModelInput& in, Format f, int block_size) {
  const auto& p = in.props;
  const double per_row =
      p.nnz > 0 ? static_cast<double>(p.rows) / static_cast<double>(p.nnz)
                : 0.0;
  switch (f) {
    case Format::kCoo:
      return 2 * kIndexBytes + kValueBytes;  // row + col + value
    case Format::kCsr:
      return kIndexBytes + kValueBytes + kIndexBytes * per_row;
    case Format::kEll:
    case Format::kBell:
    case Format::kSellC:
      return kIndexBytes + kValueBytes;  // padded col + padded value
    case Format::kHyb:
      // ELL region entries plus the COO-coordinate tail (small).
      return kIndexBytes + kValueBytes + 0.1 * kIndexBytes;
    case Format::kCsr5:
      // CSR traffic plus one tile index per tile_size entries (~1/256).
      return kIndexBytes + kValueBytes +
             kIndexBytes * (per_row + 1.0 / 256.0);
    case Format::kBcsr: {
      // One block column index per b² stored values.
      const double b2 = static_cast<double>(block_size) *
                        static_cast<double>(block_size);
      return kValueBytes + kIndexBytes / b2;
    }
  }
  return kIndexBytes + kValueBytes;
}

/// Hit rate for B-row panel reads: how often the needed k·8-byte panel is
/// still cached. Driven by the live span of B rows (bandwidth locality)
/// versus LLC capacity.
double b_hit_rate(const Machine& m, const ModelInput& in, int k) {
  const auto& p = in.props;
  // Fraction of B's rows live at once ≈ twice the normalized bandwidth
  // (the diagonal band), floored by the reciprocal row count.
  const double span = std::clamp(2.0 * p.normalized_bandwidth, 1e-6, 1.0);
  const double live_bytes = span * static_cast<double>(p.cols) *
                            static_cast<double>(k) * kValueBytes;
  const double fit = std::min(1.0, m.llc_bytes / std::max(1.0, live_bytes));
  double hit = kMaxHitRate * fit;
  // Per-row working set vs L2: one C row plus its avg_row_nnz distinct
  // B panels must cycle through L2 while the row is processed. Once that
  // spills (~half of L2), panel reuse within the row degrades — the
  // mechanism behind Aries' k≈512 cap in Study 4 (512 KB L2 per core vs
  // Grace's 1 MB).
  const double row_ws =
      std::max(1.0, p.avg_row_nnz) * static_cast<double>(k) * kValueBytes;
  if (row_ws > 0.5 * m.l2_bytes) {
    hit *= 0.5 * m.l2_bytes / row_ws;
  }
  return hit;
}

/// Loop-control overhead expressed as equivalent extra entries of work
/// per stored entry: CSR pays a row-loop setup per (possibly short) row,
/// BCSR a tile-loop setup per block, ELL almost nothing (fixed trip
/// counts), COO nothing (one flat loop). This is what splits COO vs CSR
/// on short-row matrices (paper Study 1: serial results "almost evenly
/// divided between COO and CSR" on Aries).
double loop_overhead_per_entry(const ModelInput& in, const KernelSpec& s) {
  const double avg = std::max(1.0, in.props.avg_row_nnz);
  const double k = static_cast<double>(s.k);
  // ~60 cycles of setup per row/tile, relative to the 2k flops each
  // stored entry contributes; at k=128 this is nearly free, at k=8 it
  // bites short-row matrices (part of why small k underperforms).
  switch (s.format) {
    case Format::kCoo: return 0.0;
    case Format::kCsr: return 60.0 / (avg * k);
    case Format::kEll:
      return 10.0 / (std::max(1.0, double(in.props.max_row_nnz)) * k);
    case Format::kBcsr: {
      const double b2 = double(s.block_size) * double(s.block_size);
      return 60.0 / (b2 * k);
    }
    case Format::kBell:
    case Format::kSellC:
      return 30.0 / (avg * k);
    case Format::kHyb:
      return 15.0 / (avg * k);
    case Format::kCsr5:
      // Per-tile setup amortized over tile_size entries.
      return 60.0 / (256.0 * k) + 60.0 / (avg * k);
  }
  return 0.0;
}

double vec_quality(const KernelSpec& s) {
  if (s.vendor) return kVecVendor;
  if (variant_is_transpose(s.variant)) return kVecTranspose;
  return s.manually_optimized ? kVecOptimized : kVecPlain;
}

/// Effective parallel core count including SMT yield.
double effective_cores(const Machine& m, const KernelSpec& s) {
  const int t = std::min(s.threads, m.max_threads());
  const double eff = parallel_eff(s.format);
  if (t <= m.physical_cores) return static_cast<double>(t) * eff;
  const double extra = static_cast<double>(t - m.physical_cores);
  const double yield =
      m.smt_yield *
      (is_blocked(s.format) ? kSmtBlockedBonus : kSmtStreamingPenalty);
  return (static_cast<double>(m.physical_cores) + extra * yield) * eff;
}

Prediction predict_gpu(const Machine& m, const ModelInput& in,
                       const KernelSpec& s) {
  Prediction out;
  const auto& p = in.props;
  const double k = static_cast<double>(s.k);
  const double stored = stored_entries(in, s.format, s.block_size);
  out.flops_true = 2.0 * static_cast<double>(p.nnz) * k;
  out.flops_padded = 2.0 * stored * k;

  // OpenMP target offload maps the operands every invocation: A + B in,
  // C out, over the host link.
  const double a_bytes = stored * a_bytes_per_entry(in, s.format, s.block_size);
  const double b_bytes = static_cast<double>(p.cols) * k * kValueBytes;
  const double c_bytes = static_cast<double>(p.rows) * k * kValueBytes;
  const double transfer_bytes = a_bytes + b_bytes + c_bytes;
  const double t_link = transfer_bytes / (m.link_gbs * 1e9);

  // Device-side roofline. Transpose variants lose coalescing on Bᵀ.
  const double eff =
      m.runtime_efficiency * (variant_is_transpose(s.variant) ? 0.45 : 1.0);
  const double t_compute = out.flops_padded / (m.gpu_gflops * 1e9 * eff);
  // Device traffic: A once + B gathers (HBM absorbs most re-reads: use a
  // generous hit rate scaled by locality) + C.
  const double hit = 0.5 + 0.45 * std::exp(-4.0 * p.normalized_bandwidth);
  const double dev_bytes =
      a_bytes + stored * k * kValueBytes * (1.0 - hit) + b_bytes + c_bytes;
  const double t_mem = dev_bytes / (m.gpu_bw_gbs * 1e9 * eff);

  const double t_kernel = std::max(t_compute, t_mem);
  out.memory_bound = t_mem > t_compute;
  out.bytes = transfer_bytes + dev_bytes;
  out.seconds = t_link + t_kernel + m.launch_overhead_us * 1e-6;
  out.mflops = out.flops_true / out.seconds / 1e6;
  return out;
}

}  // namespace

Prediction predict(const Machine& m, const ModelInput& in,
                   const KernelSpec& s) {
  SPMM_CHECK(s.k > 0, "model: k must be positive");
  SPMM_CHECK(s.threads > 0, "model: thread count must be positive");
  if (m.is_gpu || variant_is_device(s.variant)) {
    SPMM_CHECK(m.is_gpu, "device variant predicted on a CPU machine");
    return predict_gpu(m, in, s);
  }

  Prediction out;
  const auto& p = in.props;
  const double k = static_cast<double>(s.k);
  const double stored = stored_entries(in, s.format, s.block_size);
  out.flops_true = 2.0 * static_cast<double>(p.nnz) * k;
  out.flops_padded = 2.0 * stored * k;

  // --- compute term ---
  const double simd =
      1.0 + (m.simd_speedup - 1.0) * m.simd_eff(s.format) * vec_quality(s);
  const double cores = variant_is_parallel(s.variant)
                           ? effective_cores(m, s)
                           : 1.0;
  const double rate = cores * m.core_gflops * 1e9 * simd /
                      (1.0 + loop_overhead_per_entry(in, s));
  const double t_compute = out.flops_padded / rate;

  // --- memory term ---
  const double a_bytes = stored * a_bytes_per_entry(in, s.format, s.block_size);
  // Plain kernels accumulate into C (read-for-ownership + write-back);
  // the transpose dot-product form writes each C element exactly once.
  const double c_bytes = (variant_is_transpose(s.variant) ? 1.0 : 2.0) *
                         static_cast<double>(p.rows) * k * kValueBytes;
  const double b_compulsory = static_cast<double>(p.cols) * k * kValueBytes;
  double b_bytes;
  if (variant_is_transpose(s.variant)) {
    // Bᵀ gathers: each access pulls a cache line and uses 8 bytes of it
    // unless the row's columns are clustered (neighbors share the line).
    const double clustering = std::exp(-64.0 * p.normalized_row_gap);
    const double inflation =
        1.0 + (kLineInflation - 1.0) * (1.0 - clustering);
    const double hit = b_hit_rate(m, in, s.k);
    b_bytes = std::max(b_compulsory,
                       stored * k * kValueBytes * (1.0 - hit) * inflation);
  } else {
    const double hit = b_hit_rate(m, in, s.k);
    // A b×b BCSR tile reads its b B-rows once for all b² stored entries,
    // amortizing B traffic — but the first touch of each panel still
    // misses, so the achieved amortization grows like √b rather than b.
    // This is why blocked formats hold up in memory-bound parallel runs
    // (§6.1) without running away from CSR.
    const double amortize =
        s.format == Format::kBcsr
            ? std::sqrt(static_cast<double>(s.block_size))
            : 1.0;
    b_bytes = std::max(b_compulsory,
                       stored * k * kValueBytes * (1.0 - hit) / amortize);
    if (hit < 0.5) b_bytes *= kSpillPenalty;
  }
  out.bytes = a_bytes + b_bytes + c_bytes;
  const int bw_threads = variant_is_parallel(s.variant) ? s.threads : 1;
  // Scheduling bubbles idle the memory pipeline too, so the per-format
  // parallel efficiency divides the achieved bandwidth (this is what
  // lets statically-partitioned COO lead the memory-bound parallel runs,
  // as the paper observes on Arm).
  const double sched_eff =
      variant_is_parallel(s.variant) ? parallel_eff(s.format) : 1.0;
  // SMT threads beyond the physical cores contribute extra outstanding
  // misses; blocked formats' dependent-load chains leave memory-level
  // parallelism idle for them to fill (the paper's observation that
  // hyperthreading wins, when it wins, go to the blocked formats, §6.1).
  double smt_bw = 1.0;
  if (variant_is_parallel(s.variant) && s.threads > m.physical_cores &&
      is_blocked(s.format)) {
    const double extra = static_cast<double>(
        std::min(s.threads, m.max_threads()) - m.physical_cores);
    smt_bw += 0.25 * std::min(1.0, extra / m.physical_cores);
  }
  const double t_mem =
      out.bytes / (m.bandwidth_gbs(bw_threads) * 1e9 * sched_eff * smt_bw);

  // --- overheads ---
  double t_over = 0.0;
  if (variant_is_parallel(s.variant)) {
    t_over = m.parallel_overhead_us * 1e-6 *
             (1.0 + std::log2(static_cast<double>(s.threads)));
  }

  out.memory_bound = t_mem > t_compute;
  out.seconds = std::max(t_compute, t_mem) + t_over;
  out.mflops = out.flops_true / out.seconds / 1e6;
  return out;
}

double predict_mflops(const Machine& machine, const ModelInput& input,
                      const KernelSpec& spec) {
  return predict(machine, input, spec).mflops;
}

}  // namespace spmm::model
