// Machine descriptions for the analytical performance model.
//
// The thesis measures on two CPUs (Nvidia Grace Hopper's 72 Arm cores;
// "Aries", a dual AMD EPYC 7413 with 48 physical / 96 SMT cores) and two
// GPUs (H100, A100) driven by either OpenMP target offload or cuSPARSE.
// None of that hardware exists in this environment, so each machine is
// described by a small set of published/representative parameters and a
// calibration block tuned so the model lands in the thesis's reported
// MFLOPs ranges (see EXPERIMENTS.md). Kernel correctness never goes
// through this model — it is timing-only.
#pragma once

#include <string>

#include "formats/format_id.hpp"

namespace spmm::model {

/// Which runtime drives a GPU kernel; the thesis found OpenMP target
/// offload substantially less efficient than cuSPARSE (Study 7).
enum class GpuRuntime {
  kOmpOffload,
  kVendor,  // cuSPARSE stand-in
};

/// Description of one execution platform.
struct Machine {
  std::string name;
  bool is_gpu = false;

  // --- CPU section ---
  int physical_cores = 1;
  /// Hardware threads per core (1 = no SMT).
  int smt_per_core = 1;
  /// Sustained scalar GFLOP/s of one core on this mixed mul-add kernel
  /// mix (calibrated, not datasheet peak).
  double core_gflops = 3.0;
  /// Achievable SIMD speedup ceiling for a perfectly vectorized kernel
  /// (vector lanes × issue efficiency).
  double simd_speedup = 4.0;
  /// Per-core L2 capacity in bytes (bounds the hot B/C panel; drives the
  /// k-loop saturation Study 4 sees on Aries).
  double l2_bytes = 512.0 * 1024;
  /// Last-level cache in bytes (bounds B reuse).
  double llc_bytes = 32.0 * 1024 * 1024;
  /// Streaming memory bandwidth, single thread, GB/s.
  double bw_single_gbs = 20.0;
  /// Saturated (all-core) bandwidth, GB/s.
  double bw_peak_gbs = 200.0;
  /// Throughput fraction a second SMT thread on a busy core adds for
  /// latency-bound kernels (blocked formats benefit; streaming ones
  /// barely do — the paper's hyperthreading observation).
  double smt_yield = 0.3;
  /// Cost of a parallel region fork/join, microseconds.
  double parallel_overhead_us = 8.0;

  // --- GPU section (is_gpu == true) ---
  /// Achievable FP64 GFLOP/s for this kernel class at full occupancy.
  double gpu_gflops = 10000.0;
  /// Device memory bandwidth, GB/s.
  double gpu_bw_gbs = 2000.0;
  /// Host→device link bandwidth, GB/s (NVLink-C2C on Grace Hopper, PCIe
  /// on Aries — the reason GH offload pays so much less per call).
  double link_gbs = 50.0;
  /// Kernel launch + runtime bookkeeping per invocation, microseconds.
  double launch_overhead_us = 20.0;
  /// Efficiency of the driving runtime (OpenMP offload ≪ vendor library).
  double runtime_efficiency = 0.25;

  // --- per-format calibration ---
  /// Fraction of the SIMD ceiling each format's plain kernel achieves on
  /// this machine (how well the ISA/compiler digest the inner loop).
  double simd_eff_coo = 0.45;
  double simd_eff_csr = 0.55;
  double simd_eff_ell = 0.70;
  double simd_eff_bcsr = 0.75;

  [[nodiscard]] int max_threads() const {
    return physical_cores * smt_per_core;
  }

  /// Aggregate streaming bandwidth available to `threads` threads:
  /// exponential saturation anchored so bandwidth(1) = bw_single_gbs.
  [[nodiscard]] double bandwidth_gbs(int threads) const;

  /// SIMD achievement factor for a format's plain kernel.
  [[nodiscard]] double simd_eff(Format f) const;
};

/// The thesis's Arm machine: Nvidia Grace Hopper superchip (72 Neoverse
/// V2 cores, no SMT, very high bandwidth, NVLink-C2C to the H100).
Machine grace_hopper();

/// The thesis's x86 machine "Aries": 2× AMD EPYC 7413 Milan, 24C/48T
/// each (48 physical cores, SMT2), faster single core, earlier bandwidth
/// saturation.
Machine aries();

/// H100 GPU (attached to Grace Hopper) under the given runtime.
Machine h100(GpuRuntime runtime);

/// A100 GPU (attached to Aries) under the given runtime.
Machine a100(GpuRuntime runtime);

}  // namespace spmm::model
