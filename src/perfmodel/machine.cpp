#include "perfmodel/machine.hpp"

#include <algorithm>
#include <cmath>

namespace spmm::model {

double Machine::bandwidth_gbs(int threads) const {
  // SMT threads share their core's load/store machinery: they add no
  // bandwidth beyond the physical core count.
  const int t = std::min(threads, physical_cores);
  if (t <= 1) return bw_single_gbs;
  // Michaelis–Menten saturation anchored at bandwidth(1) == bw_single:
  // bw(t) = peak·t/(t + h) with h = peak/single − 1. Saturates slowly,
  // so throughput still creeps upward at high thread counts — the
  // paper's Study 3.1 finds most matrices peaking at the 72-thread
  // bound on Arm.
  const double h = bw_peak_gbs / bw_single_gbs - 1.0;
  return bw_peak_gbs * static_cast<double>(t) /
         (static_cast<double>(t) + h);
}

double Machine::simd_eff(Format f) const {
  switch (f) {
    case Format::kCoo: return simd_eff_coo;
    case Format::kCsr: return simd_eff_csr;
    case Format::kEll: return simd_eff_ell;
    case Format::kBcsr: return simd_eff_bcsr;
    // The future-work formats share ELL's lane-friendly inner loop.
    case Format::kBell: return simd_eff_ell;
    case Format::kSellC: return simd_eff_ell;
    case Format::kHyb: return simd_eff_ell;
    case Format::kCsr5: return simd_eff_csr;
  }
  return 0.5;
}

Machine grace_hopper() {
  Machine m;
  m.name = "GraceHopper(Arm)";
  m.physical_cores = 72;
  m.smt_per_core = 1;
  // Neoverse V2 @ ~3.4 GHz; calibrated so serial SpMM averages ~5 GFLOP/s
  // (paper §5.3: "single core computations on Arm average around 5k
  // MFLOPs").
  m.core_gflops = 2.6;
  m.simd_speedup = 4.0;  // 4×128-bit NEON FMA pipes
  m.l2_bytes = 1.0 * 1024 * 1024;
  m.llc_bytes = 114.0 * 1024 * 1024;
  // Effective *gather* bandwidth for this access pattern, not STREAM:
  // calibrated so the 32-thread parallel speedup lands at the paper's
  // 5-7× (§5.3).
  m.bw_single_gbs = 22.0;
  m.bw_peak_gbs = 62.0;
  m.smt_yield = 0.0;  // no SMT
  m.parallel_overhead_us = 10.0;
  // Arm's NEON digests the dense BCSR tiles well (paper Study 6: all
  // three BCSR block sizes ran faster on Arm).
  m.simd_eff_coo = 0.48;
  m.simd_eff_csr = 0.56;
  m.simd_eff_ell = 0.56;
  m.simd_eff_bcsr = 0.95;
  return m;
}

Machine aries() {
  Machine m;
  m.name = "Aries(x86)";
  m.physical_cores = 48;
  m.smt_per_core = 2;
  // Zen 3 @ ~3.6 GHz boost: stronger single core (paper §5.8: "For pure
  // individual core performance, Aries seems to yield better results
  // across the board").
  m.core_gflops = 3.2;
  m.simd_speedup = 3.6;  // AVX2, 2×256-bit FMA
  m.l2_bytes = 512.0 * 1024;
  m.llc_bytes = 256.0 * 1024 * 1024;  // 2 sockets × 128 MB L3
  // Effective gather bandwidth; dual-socket DDR4 outruns Grace's
  // LPDDR5X gather throughput at scale (paper §5.5: Aries hits 40-60K
  // MFLOPs on the high end vs Arm's 30-35K).
  m.bw_single_gbs = 26.0;
  m.bw_peak_gbs = 85.0;
  m.smt_yield = 0.35;
  m.parallel_overhead_us = 12.0;
  // AVX2 gathers hurt the irregular formats less than NEON, but the BCSR
  // tile loop fares relatively worse than on Arm (Study 6).
  m.simd_eff_coo = 0.62;
  m.simd_eff_csr = 0.65;
  m.simd_eff_ell = 0.60;
  m.simd_eff_bcsr = 0.42;
  return m;
}

namespace {

void apply_runtime(Machine& m, GpuRuntime runtime) {
  if (runtime == GpuRuntime::kVendor) {
    // cuSPARSE: hand-tuned kernels; ~10% of peak on this irregular
    // kernel class is a realistic achieved fraction.
    m.runtime_efficiency = 0.10;
    m.launch_overhead_us = 12.0;
    m.name += "/cuSPARSE";
  } else {
    // OpenMP target offload: generic codegen, poor occupancy (paper §5.9:
    // "the OpenMP target offload library is not known to do well on the
    // GPU").
    m.runtime_efficiency = 0.009;
    m.launch_overhead_us = 45.0;
    m.name += "/omp-offload";
  }
}

}  // namespace

Machine h100(GpuRuntime runtime) {
  Machine m;
  m.name = "H100";
  m.is_gpu = true;
  m.gpu_gflops = 30000.0;  // FP64 (non-tensor) ~34 TFLOP/s peak
  m.gpu_bw_gbs = 3000.0;   // HBM3 3.35 TB/s peak
  m.link_gbs = 350.0;      // NVLink-C2C to the Grace CPU
  apply_runtime(m, runtime);
  return m;
}

Machine a100(GpuRuntime runtime) {
  Machine m;
  m.name = "A100";
  m.is_gpu = true;
  m.gpu_gflops = 9000.0;  // FP64 9.7 TFLOP/s peak
  m.gpu_bw_gbs = 1700.0;  // HBM2e 2 TB/s peak
  m.link_gbs = 22.0;      // PCIe 4.0 ×16 in practice
  apply_runtime(m, runtime);
  return m;
}

}  // namespace spmm::model
