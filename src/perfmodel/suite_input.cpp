#include "perfmodel/suite_input.hpp"

#include <cstdint>

#include "gen/generator.hpp"
#include "gen/suite.hpp"

namespace spmm::model {

ModelInput suite_model_input(const std::string& name, double probe_scale) {
  const gen::PaperRow& row = gen::paper_row(name);
  gen::MatrixSpec spec = gen::suite_spec(name, probe_scale);
  if (spec.placement.kind == gen::Placement::kBanded) {
    // A banded probe must be large enough that its diagonal window holds
    // the widest row (window = 2·frac·rows); otherwise the generator
    // falls back to scattered top-up and the probe's locality metrics
    // misrepresent the full-scale matrix.
    const double needed_rows =
        3.0 * static_cast<double>(row.max) /
        (2.0 * spec.placement.bandwidth_frac);
    const double needed_scale =
        std::min(1.0, needed_rows / static_cast<double>(row.size));
    if (needed_scale > probe_scale) {
      spec = gen::suite_spec(name, needed_scale);
    }
  }
  const auto probe = gen::generate<double, std::int32_t>(spec);

  ModelInput in = model_input_from_coo(probe, name, {2, 4, 16});

  // Replace size-dependent statistics with the published full-scale
  // values; keep the probe's (scale-invariant) locality metrics.
  in.props.rows = row.size;
  in.props.cols = row.size;
  in.props.nnz = row.nnz;
  in.props.max_row_nnz = row.max;
  in.props.avg_row_nnz =
      static_cast<double>(row.nnz) / static_cast<double>(row.size);
  in.props.column_ratio =
      static_cast<double>(row.max) / in.props.avg_row_nnz;
  in.props.row_nnz_variance = static_cast<double>(row.variance);
  in.props.row_nnz_stddev = static_cast<double>(row.stddev);
  in.props.ell_padding_ratio = static_cast<double>(row.size) *
                               static_cast<double>(row.max) /
                               static_cast<double>(row.nnz);
  return in;
}

}  // namespace spmm::model
