// Model inputs for the 14-matrix paper suite.
//
// Locality metrics and BCSR fill ratios are scale-invariant, so they are
// measured on a small generated instance; the size-dependent statistics
// (rows, nnz, max, avg, variance) are then overridden with the full-scale
// Table 5.1 values, giving the cost model the matrix the paper actually
// ran.
#pragma once

#include <string>

#include "perfmodel/cost_model.hpp"

namespace spmm::model {

/// Build the ModelInput for suite matrix `name`. `probe_scale` sizes the
/// instance used to measure locality/fill (larger = slower, slightly
/// more accurate).
ModelInput suite_model_input(const std::string& name,
                             double probe_scale = 0.05);

}  // namespace spmm::model
