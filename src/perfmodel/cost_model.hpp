// Analytical SpMM cost model.
//
// predict() estimates the wall time of one kernel invocation on a
// described machine from (a) the matrix's Table 5.1 statistics and
// locality metrics, (b) the format's padded work and storage traffic,
// and (c) the kernel variant's vectorization quality. It is a
// roofline-style model: time = max(compute, memory) + fixed overheads,
// with a cache-reuse model for the B operand (the paper identifies the
// repeated gathering of B as SpMM's defining cost, §2.3).
//
// The model regenerates the multi-machine figures (Studies 1–8) that
// cannot be measured natively here; every constant is calibrated against
// the MFLOPs ranges the thesis reports and checked by shape tests in
// tests/test_cost_model.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "formats/format_id.hpp"
#include "formats/properties.hpp"
#include "perfmodel/machine.hpp"

namespace spmm::model {

/// Per-matrix input: full-scale statistics plus per-block-size BCSR fill
/// ratios (computed natively from a scaled instance; the ratios are
/// scale-invariant).
struct ModelInput {
  MatrixProperties props;
  /// block size → fill ratio (true nnz / stored entries).
  std::map<int, double> bcsr_fill;
};

/// The kernel being predicted.
struct KernelSpec {
  Format format = Format::kCsr;
  Variant variant = Variant::kSerial;
  int threads = 1;
  int k = 128;
  int block_size = 4;
  /// Study 9 manually optimized (hoisted load + template-k) kernels.
  bool manually_optimized = false;
  /// Study 7 vendor library (cuSPARSE stand-in) instead of our kernels.
  bool vendor = false;
};

/// Model output for one invocation.
struct Prediction {
  double seconds = 0.0;
  /// True-work MFLOPs (2·nnz·k / time) — the paper's reported metric.
  double mflops = 0.0;
  /// 2·nnz·k.
  double flops_true = 0.0;
  /// 2·stored_entries·k (includes padding work).
  double flops_padded = 0.0;
  /// Modeled memory traffic in bytes.
  double bytes = 0.0;
  /// Whether the memory term dominated.
  bool memory_bound = false;
};

/// Stored entries for a format (padding included); needs fill ratios for
/// BCSR. ELL uses rows·max_row_nnz. BELL/SELL-C use a padding estimate
/// between ELL's and none (their group/chunk widths track the row mix).
double stored_entries(const ModelInput& in, Format f, int block_size);

/// Predict one kernel invocation. Value type is double (8-byte values,
/// 4-byte indices — the suite's bench configuration).
Prediction predict(const Machine& machine, const ModelInput& input,
                   const KernelSpec& spec);

/// Convenience: predicted true-work MFLOPs.
double predict_mflops(const Machine& machine, const ModelInput& input,
                      const KernelSpec& spec);

/// Build a ModelInput from a generated matrix (computes locality metrics
/// and fill ratios natively). `blocks` lists the BCSR block sizes to
/// precompute.
template <ValueType V, IndexType I>
ModelInput model_input_from_coo(const Coo<V, I>& coo, std::string name,
                                std::initializer_list<int> blocks = {2, 4,
                                                                     16}) {
  ModelInput in;
  in.props = compute_properties(coo, std::move(name));
  for (int b : blocks) {
    in.bcsr_fill[b] = estimate_bcsr_fill(coo, static_cast<I>(b));
  }
  return in;
}

}  // namespace spmm::model
