// Emulated device execution (the GPU stand-in).
//
// The thesis runs its GPU kernels through OpenMP target offload on H100 /
// A100 devices. No GPU exists in this environment, so this module
// reproduces the *programming model* faithfully on the host: a separate
// device memory arena with explicit, byte-accounted host↔device copies
// and a finite capacity (the paper's Study 7 drops matrices that exceed
// device memory — the arena throws DeviceOutOfMemory the same way), plus
// a CUDA-style grid/block kernel launcher. Kernels written against this
// API have the same decomposition and indexing they would on a real
// device; their *timing* on real hardware comes from spmm::model.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "resilience/fault_injector.hpp"
#include "support/error.hpp"
#include "support/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace spmm::dev {

/// CUDA-style launch geometry. Only x/y are used by the SpMM kernels.
struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;

  [[nodiscard]] std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
};

/// Per-thread coordinates handed to an emulated kernel.
struct ThreadCtx {
  Dim3 block_idx;
  Dim3 thread_idx;
  Dim3 grid_dim;
  Dim3 block_dim;

  /// Global linear x index: blockIdx.x * blockDim.x + threadIdx.x.
  [[nodiscard]] std::uint64_t global_x() const {
    return static_cast<std::uint64_t>(block_idx.x) * block_dim.x +
           thread_idx.x;
  }
  [[nodiscard]] std::uint64_t global_y() const {
    return static_cast<std::uint64_t>(block_idx.y) * block_dim.y +
           thread_idx.y;
  }
};

/// Thrown when a device allocation exceeds the arena capacity.
class DeviceOutOfMemory : public Error {
 public:
  explicit DeviceOutOfMemory(const std::string& what) : Error(what) {}

  [[nodiscard]] std::string_view error_code() const override {
    return names::errc::kDevOom;
  }
};

class DeviceArena;

/// Non-owning typed view of device memory. Valid while its arena lives.
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bytes() const { return size_ * sizeof(T); }

 private:
  friend class DeviceArena;
  DeviceBuffer(T* data, std::size_t size) : data_(data), size_(size) {}

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// The emulated device memory space. Tracks allocation high-water mark
/// and transfer traffic; enforces a capacity like a physical device.
class DeviceArena {
 public:
  /// `capacity_bytes` = 0 means unlimited (the default for tests).
  explicit DeviceArena(std::size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Attach a telemetry session: allocations, frees, transfers, peak
  /// growth, and launches are emitted as "dev.*" counter events. A
  /// disabled session (the default) costs one null-pointer branch per
  /// operation.
  void set_telemetry(telemetry::Session session) {
    tel_ = std::move(session);
  }

  /// Attach a fault injector (null detaches). Every injection site in
  /// the arena is guarded by one null-pointer branch, so a detached
  /// arena behaves — and costs — exactly as before this API existed.
  /// A `dev.capacity.limit` action shrinks the arena capacity
  /// immediately (its `bytes=` parameter), emulating a device that is
  /// smaller than the run assumed.
  void set_fault_injector(std::shared_ptr<resilience::FaultInjector> faults) {
    faults_ = std::move(faults);
    if (faults_ && faults_->armed(names::site::kDevCapacityLimit)) {
      const double bytes = faults_->param(names::site::kDevCapacityLimit, "bytes", 0.0);
      if (bytes > 0.0) {
        const auto limit = static_cast<std::size_t>(bytes);
        capacity_ = capacity_ == 0 ? limit : std::min(capacity_, limit);
      }
    }
  }

  [[nodiscard]] const std::shared_ptr<resilience::FaultInjector>&
  fault_injector() const {
    return faults_;
  }

  /// Allocate `n` elements of device memory.
  template <class T>
  DeviceBuffer<T> alloc(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (faults_ && faults_->should_fire(names::site::kDevAllocFail)) {
      if (tel_.enabled()) {
        tel_.counter(names::fault_counter(names::site::kDevAllocFail), 1.0,
                     "resilience");
        tel_.log(names::tel::kLogDevOom,
                 "injected allocation failure (" +
                                std::to_string(bytes) + " bytes)");
      }
      // The injected failure leaves the arena exactly as a real
      // capacity miss would: nothing allocated, accounting untouched.
      throw DeviceOutOfMemory("fault injection: device allocation of " +
                              std::to_string(bytes) + " bytes failed");
    }
    if (capacity_ != 0 && allocated_ + bytes > capacity_) {
      if (tel_.enabled()) {
        tel_.log(names::tel::kLogDevOom,
                 "allocation of " + std::to_string(bytes) +
                                " bytes over capacity " +
                                std::to_string(capacity_));
      }
      throw DeviceOutOfMemory(
          "device allocation of " + std::to_string(bytes) +
          " bytes exceeds arena capacity (" + std::to_string(capacity_) +
          " bytes, " + std::to_string(allocated_) + " in use)");
    }
    auto storage = std::make_unique<std::byte[]>(bytes);
    T* p = reinterpret_cast<T*>(storage.get());
    allocations_.push_back(std::move(storage));
    allocated_ += bytes;
    const bool new_peak = allocated_ > peak_;
    peak_ = std::max(peak_, allocated_);
    if (tel_.enabled()) {
      tel_.counter(names::tel::kDevAllocBytes, static_cast<double>(bytes),
                   "dev");
      if (new_peak) {
        tel_.counter(names::tel::kDevPeakBytes, static_cast<double>(peak_),
                     "dev");
      }
    }
    return DeviceBuffer<T>(p, n);
  }

  /// Copy host → device; accounted as H2D traffic.
  template <class T>
  void copy_to_device(DeviceBuffer<T> dst, const T* src, std::size_t n) {
    SPMM_CHECK(n <= dst.size(), "H2D copy larger than destination buffer");
    std::memcpy(dst.data(), src, n * sizeof(T));
    if (faults_ && n > 0 && faults_->should_fire(names::site::kH2dCorrupt)) {
      corrupt_byte(names::site::kH2dCorrupt,
                   reinterpret_cast<std::byte*>(dst.data()),
                   n * sizeof(T));
    }
    h2d_bytes_ += n * sizeof(T);
    if (tel_.enabled()) {
      tel_.counter(names::tel::kDevH2dBytes,
                   static_cast<double>(n * sizeof(T)),
                   "dev");
    }
  }

  /// Copy device → host; accounted as D2H traffic.
  template <class T>
  void copy_to_host(T* dst, DeviceBuffer<T> src, std::size_t n) {
    SPMM_CHECK(n <= src.size(), "D2H copy larger than source buffer");
    std::memcpy(dst, src.data(), n * sizeof(T));
    if (faults_ && n > 0 && faults_->should_fire(names::site::kD2hCorrupt)) {
      corrupt_byte(names::site::kD2hCorrupt,
                   reinterpret_cast<std::byte*>(dst),
                   n * sizeof(T));
    }
    d2h_bytes_ += n * sizeof(T);
    if (tel_.enabled()) {
      tel_.counter(names::tel::kDevD2hBytes,
                   static_cast<double>(n * sizeof(T)),
                   "dev");
    }
  }

  /// Zero-fill a device buffer (cudaMemset analogue).
  template <class T>
  void memset_zero(DeviceBuffer<T> buf) {
    std::memset(buf.data(), 0, buf.bytes());
  }

  [[nodiscard]] std::size_t allocated_bytes() const { return allocated_; }
  [[nodiscard]] std::size_t peak_bytes() const { return peak_; }
  [[nodiscard]] std::size_t h2d_bytes() const { return h2d_bytes_; }
  [[nodiscard]] std::size_t d2h_bytes() const { return d2h_bytes_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t launches() const { return launches_; }

  /// Release every allocation (buffers become dangling).
  void reset() {
    if (tel_.enabled() && allocated_ > 0) {
      tel_.counter(names::tel::kDevFreeBytes,
                   static_cast<double>(allocated_), "dev");
    }
    allocations_.clear();
    allocated_ = 0;
  }

  /// Internal: counts kernel launches (used by tests and reports).
  void note_launch() {
    ++launches_;
    if (tel_.enabled()) tel_.counter(names::tel::kDevLaunch, 1.0, "dev");
    if (faults_ && faults_->should_fire(names::site::kDevLaunchStall)) {
      const double ms = faults_->param(names::site::kDevLaunchStall, "ms", 50.0);
      if (tel_.enabled()) {
        tel_.counter(names::fault_counter(names::site::kDevLaunchStall), 1.0,
                     "resilience");
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(ms * 1e3)));
    }
  }

 private:
  /// Flip one bit of a deterministic byte in [data, data+bytes): the
  /// emulation of a corrupted transfer. 0x40 lands in a double's
  /// mantissa/exponent region, so the damage is visible to the COO
  /// verification instead of vanishing in round-off.
  void corrupt_byte(std::string_view site, std::byte* data,
                    std::size_t bytes) {
    data[faults_->pick(site, bytes)] ^= std::byte{0x40};
    if (tel_.enabled()) {
      tel_.counter(names::fault_counter(site), 1.0, "resilience");
    }
  }

  telemetry::Session tel_;
  std::shared_ptr<resilience::FaultInjector> faults_;
  std::size_t capacity_;
  std::size_t allocated_ = 0;
  std::size_t peak_ = 0;
  std::size_t h2d_bytes_ = 0;
  std::size_t d2h_bytes_ = 0;
  std::uint64_t launches_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> allocations_;
};

/// Launch `kernel(ctx)` over grid×block threads. Blocks run in parallel
/// on the host (OpenMP), threads within a block sequentially — the same
/// no-inter-block-synchronization contract a real device enforces, so a
/// kernel relying on cross-block ordering fails here too.
template <class Kernel>
void launch(DeviceArena& arena, Dim3 grid, Dim3 block, Kernel&& kernel) {
  SPMM_CHECK(grid.count() > 0 && block.count() > 0,
             "kernel launch requires a non-empty grid and block");
  arena.note_launch();
  const std::int64_t nblocks = static_cast<std::int64_t>(grid.count());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t b = 0; b < nblocks; ++b) {
    Dim3 bidx;
    bidx.x = static_cast<unsigned>(b % grid.x);
    bidx.y = static_cast<unsigned>((b / grid.x) % grid.y);
    bidx.z = static_cast<unsigned>(b / (static_cast<std::uint64_t>(grid.x) * grid.y));
    ThreadCtx ctx;
    ctx.block_idx = bidx;
    ctx.grid_dim = grid;
    ctx.block_dim = block;
    for (unsigned tz = 0; tz < block.z; ++tz) {
      for (unsigned ty = 0; ty < block.y; ++ty) {
        for (unsigned tx = 0; tx < block.x; ++tx) {
          ctx.thread_idx = Dim3{tx, ty, tz};
          kernel(ctx);
        }
      }
    }
  }
}

}  // namespace spmm::dev
