// spmm::hwprof — hardware performance-counter profiling.
//
// The suite's numbers are wall-clock-derived GFLOP/s; this module adds
// the microarchitectural side: a CounterSet wraps perf_event_open(2)
// over the counters that explain format behaviour (cycles, instructions,
// LLC loads/misses, L1D misses, stalled cycles) so every benchmark cell
// can report measured hardware truth — IPC, cache misses per nonzero,
// bytes actually moved — next to its rate. SpChar (PAPERS.md) shows
// exactly these features predict format winners; the roofline helper
// (roofline.hpp) turns them into operational intensity and
// %-of-STREAM-bandwidth.
//
// Availability contract: perf counters are a kernel/hardware privilege,
// not a given. Containers and CI runners routinely deny the syscall
// (perf_event_paranoid, seccomp) or lack a PMU entirely (VMs return
// ENOENT for hardware events). A CounterSet therefore NEVER throws on
// denial — it degrades to Backend::kNone, where start()/stop()/read()
// are no-ops and every delta reads zero. Callers behave identically
// everywhere; the backend is reported so downstream consumers
// (BenchResult::hw_backend, the CSV, BENCH_kernels.json) can tell a
// measured zero from an unmeasured one. Tier-1 tests never depend on
// kernel configuration.
//
// Cost model: profiling is OFF by default (BenchParams::hw_counters).
// When off, no CounterSet is ever constructed — the benchmark iteration
// loop is bit-identical to the pre-hwprof suite. When on, the cost is
// two ioctls around the timed loop plus one read(2) after it; the
// counters are opened once per benchmark instance and reused across
// cells (the format-once discipline applied to file descriptors).
//
// Multiplexing: the kernel time-shares PMU slots when more events are
// requested than fit. Every event is opened with
// PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING and its value is scaled by
// enabled/running on read — the standard estimate for multiplexed
// counts. Cycles+instructions are opened as one atomic group so IPC is
// always an exact ratio, never a cross-multiplex estimate; the cache
// and stall events are opened standalone so one unsupported event
// (common in VMs) cannot keep the whole group off the PMU.
//
// Environment knobs:
//   SPMM_HWPROF=off|none  force the no-op backend (CI determinism, the
//                         fallback-path tests, A/B overhead checks).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace spmm::hwprof {

/// Which measurement backend a CounterSet ended up with.
enum class Backend {
  /// No counters: profiling disabled, denied, or unsupported. All
  /// deltas read zero; start/stop/read are no-ops.
  kNone,
  /// Linux perf_event_open(2) hardware counters.
  kPerfEvent,
};

[[nodiscard]] std::string_view backend_name(Backend backend);

/// The fixed counter vocabulary a CounterSet measures. Kept small and
/// stable: these are the events SpChar identifies as format-predictive,
/// and their names are API (telemetry counters are "hw." + name).
enum class Counter : int {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kL1dMisses,
  kStalledCycles,
};
inline constexpr int kCounterCount = 6;

/// Stable short name ("cycles", "instructions", "llc_loads",
/// "llc_misses", "l1d_misses", "stalled_cycles").
[[nodiscard]] std::string_view counter_name(Counter counter);

/// Cache-line size assumed when converting LLC misses to bytes moved.
inline constexpr double kCacheLineBytes = 64.0;

/// One start()..stop() window's multiplex-scaled counter deltas.
struct CounterDeltas {
  Backend backend = Backend::kNone;
  /// Scaled event counts, indexed by Counter. An event that could not
  /// be opened (unsupported on this PMU) reads 0 with available false.
  std::array<double, kCounterCount> values{};
  std::array<bool, kCounterCount> available{};
  /// True when any event was time-shared on the PMU (running <
  /// enabled): its value is a scaled estimate, not an exact count.
  bool multiplexed = false;

  [[nodiscard]] double value(Counter c) const {
    return values[static_cast<int>(c)];
  }
  [[nodiscard]] bool has(Counter c) const {
    return available[static_cast<int>(c)];
  }

  /// Instructions per cycle; 0 when either event is missing or cycles
  /// read 0. Always an exact ratio (same PMU group).
  [[nodiscard]] double ipc() const;

  /// Bytes moved through the last-level cache boundary: LLC misses ×
  /// the cache-line size. 0 when the miss event is unavailable.
  [[nodiscard]] double llc_miss_bytes() const;
};

/// RAII set of perf counters for the calling thread (self-profiling,
/// user space only — works at perf_event_paranoid <= 2). Construction
/// probes and opens the events; destruction closes every descriptor.
/// Never throws on denial: check backend() for the outcome.
class CounterSet {
 public:
  CounterSet();
  ~CounterSet();

  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  [[nodiscard]] Backend backend() const { return backend_; }

  /// Reset every counter to zero and enable counting. Safe to call
  /// again without stop() (each start is a fresh window).
  void start();
  /// Disable counting; read() then reports the start()..stop() window.
  void stop();
  /// Multiplex-scaled deltas of the last window. Zeroes under kNone.
  [[nodiscard]] CounterDeltas read() const;

 private:
  Backend backend_ = Backend::kNone;
  /// Group leader (cycles) + instructions share fds_[0..1]; the rest
  /// are standalone events. -1 = not open.
  std::array<int, kCounterCount> fds_{};
};

/// True when this process can open at least the cycles+instructions
/// group right now (one probe CounterSet; not cached — cheap enough,
/// and honours a changed SPMM_HWPROF between calls).
[[nodiscard]] bool available();

/// True when SPMM_HWPROF=off|none|0 forces the no-op backend.
[[nodiscard]] bool disabled_by_env();

}  // namespace spmm::hwprof
