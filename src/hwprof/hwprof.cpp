#include "hwprof/hwprof.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace spmm::hwprof {

std::string_view backend_name(Backend backend) {
  switch (backend) {
    case Backend::kNone: return "none";
    case Backend::kPerfEvent: return "perf_event";
  }
  return "?";
}

std::string_view counter_name(Counter counter) {
  switch (counter) {
    case Counter::kCycles: return "cycles";
    case Counter::kInstructions: return "instructions";
    case Counter::kLlcLoads: return "llc_loads";
    case Counter::kLlcMisses: return "llc_misses";
    case Counter::kL1dMisses: return "l1d_misses";
    case Counter::kStalledCycles: return "stalled_cycles";
  }
  return "?";
}

double CounterDeltas::ipc() const {
  const double cycles = value(Counter::kCycles);
  if (!has(Counter::kCycles) || !has(Counter::kInstructions) ||
      cycles <= 0.0) {
    return 0.0;
  }
  return value(Counter::kInstructions) / cycles;
}

double CounterDeltas::llc_miss_bytes() const {
  if (!has(Counter::kLlcMisses)) return 0.0;
  return value(Counter::kLlcMisses) * kCacheLineBytes;
}

bool disabled_by_env() {
  const char* env = std::getenv("SPMM_HWPROF");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "off" || v == "none" || v == "0";
}

#if defined(__linux__)

namespace {

/// perf_event_open(2) has no glibc wrapper.
int perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                    unsigned long flags) {
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags));
}

/// Open one self-profiling, user-space-only event. Returns -1 on any
/// refusal (EACCES under perf_event_paranoid, ENOENT/ENODEV on hosts
/// without the event or a PMU at all, ENOSYS under seccomp) — the
/// caller degrades instead of throwing.
int open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = type;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // group enables via the leader
  attr.exclude_kernel = 1;  // paranoid<=2 allows user-space-only counts
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return perf_event_open(&attr, 0, -1, group_fd, 0);
}

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

/// Scale a raw count by time_enabled/time_running (the standard
/// multiplexing estimate). Flags `multiplexed` when the event was
/// time-shared. A never-scheduled event (running == 0) reads 0.
double scale_count(std::uint64_t raw, std::uint64_t enabled,
                   std::uint64_t running, bool& multiplexed) {
  if (running == 0) return 0.0;
  if (running >= enabled) return static_cast<double>(raw);
  multiplexed = true;
  return static_cast<double>(raw) *
         (static_cast<double>(enabled) / static_cast<double>(running));
}

}  // namespace

CounterSet::CounterSet() {
  fds_.fill(-1);
  if (disabled_by_env()) return;

  // Cycles leads a two-event group with instructions: the kernel
  // schedules a group atomically, so their ratio (IPC) never mixes
  // multiplex windows. If even this pair is refused there is no usable
  // backend — stay at kNone.
  const int leader =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader < 0) return;
  const int instructions =
      open_event(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader);
  if (instructions < 0) {
    ::close(leader);
    return;
  }
  fds_[static_cast<int>(Counter::kCycles)] = leader;
  fds_[static_cast<int>(Counter::kInstructions)] = instructions;

  // The cache and stall events open standalone: one unsupported event
  // (VMs often lack LLC events) must not evict the others from the
  // PMU, and standalone events multiplex independently.
  fds_[static_cast<int>(Counter::kLlcLoads)] =
      open_event(PERF_TYPE_HW_CACHE,
                 cache_config(PERF_COUNT_HW_CACHE_LL,
                              PERF_COUNT_HW_CACHE_OP_READ,
                              PERF_COUNT_HW_CACHE_RESULT_ACCESS),
                 -1);
  fds_[static_cast<int>(Counter::kLlcMisses)] =
      open_event(PERF_TYPE_HW_CACHE,
                 cache_config(PERF_COUNT_HW_CACHE_LL,
                              PERF_COUNT_HW_CACHE_OP_READ,
                              PERF_COUNT_HW_CACHE_RESULT_MISS),
                 -1);
  fds_[static_cast<int>(Counter::kL1dMisses)] =
      open_event(PERF_TYPE_HW_CACHE,
                 cache_config(PERF_COUNT_HW_CACHE_L1D,
                              PERF_COUNT_HW_CACHE_OP_READ,
                              PERF_COUNT_HW_CACHE_RESULT_MISS),
                 -1);
  // Backend stalls explain memory-bound cells best; fall back to
  // frontend stalls where the backend event does not exist.
  int stalled = open_event(PERF_TYPE_HARDWARE,
                           PERF_COUNT_HW_STALLED_CYCLES_BACKEND, -1);
  if (stalled < 0) {
    stalled = open_event(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_STALLED_CYCLES_FRONTEND, -1);
  }
  fds_[static_cast<int>(Counter::kStalledCycles)] = stalled;

  backend_ = Backend::kPerfEvent;
}

CounterSet::~CounterSet() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void CounterSet::start() {
  if (backend_ == Backend::kNone) return;
  for (int fd : fds_) {
    if (fd < 0) continue;
    ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void CounterSet::stop() {
  if (backend_ == Backend::kNone) return;
  for (int fd : fds_) {
    if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

CounterDeltas CounterSet::read() const {
  CounterDeltas d;
  d.backend = backend_;
  if (backend_ == Backend::kNone) return d;
  for (int i = 0; i < kCounterCount; ++i) {
    const int fd = fds_[static_cast<std::size_t>(i)];
    if (fd < 0) continue;
    // read_format layout: value, time_enabled, time_running.
    std::uint64_t buf[3] = {0, 0, 0};
    if (::read(fd, buf, sizeof buf) != sizeof buf) continue;
    d.values[static_cast<std::size_t>(i)] =
        scale_count(buf[0], buf[1], buf[2], d.multiplexed);
    d.available[static_cast<std::size_t>(i)] = true;
  }
  return d;
}

#else  // !__linux__

CounterSet::CounterSet() { fds_.fill(-1); }
CounterSet::~CounterSet() = default;
void CounterSet::start() {}
void CounterSet::stop() {}
CounterDeltas CounterSet::read() const {
  CounterDeltas d;
  d.backend = Backend::kNone;
  return d;
}

#endif  // __linux__

bool available() {
  CounterSet probe;
  return probe.backend() != Backend::kNone;
}

}  // namespace spmm::hwprof
