#include "hwprof/roofline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace spmm::hwprof {

RooflinePoint roofline(const RooflineInput& in) {
  RooflinePoint pt;
  if (in.seconds > 0.0 && in.flops > 0.0) {
    pt.gflops = in.flops / in.seconds / 1e9;
  }
  const double bytes =
      in.measured_bytes > 0.0 ? in.measured_bytes : in.model_bytes;
  pt.oi_measured = in.measured_bytes > 0.0;
  if (bytes > 0.0 && in.flops > 0.0) {
    pt.oi = in.flops / bytes;
  }
  if (bytes > 0.0 && in.seconds > 0.0) {
    pt.achieved_bw_gbs = bytes / in.seconds / 1e9;
    if (in.stream_bw_gbs > 0.0) {
      pt.stream_bw_fraction = pt.achieved_bw_gbs / in.stream_bw_gbs;
    }
  }
  if (in.stream_bw_gbs > 0.0) {
    pt.roof_gflops = pt.oi * in.stream_bw_gbs;
  }
  return pt;
}

double model_bytes(std::size_t format_bytes, std::int64_t rows,
                   std::int64_t cols, int k, std::size_t value_size) {
  const double vs = static_cast<double>(value_size);
  const double kk = static_cast<double>(std::max(0, k));
  return static_cast<double>(format_bytes) +
         static_cast<double>(std::max<std::int64_t>(0, cols)) * kk * vs +
         2.0 * static_cast<double>(std::max<std::int64_t>(0, rows)) * kk * vs;
}

namespace {

/// STREAM triad over a buffer several times the typical LLC, best of 3
/// sweeps. Counts the triad's compulsory traffic (two reads + one
/// write per element; write-allocate traffic is deliberately not
/// charged — STREAM's own convention).
double measure_stream_triad_gbs() {
  constexpr std::size_t kElems = std::size_t{1} << 22;  // 4 Mi doubles/array
  std::vector<double> a(kElems, 1.0);
  std::vector<double> b(kElems, 2.0);
  std::vector<double> c(kElems, 3.0);
  const double scalar = 3.0;
  double best_seconds = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kElems; ++i) {
      a[i] = b[i] + scalar * c[i];
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (rep == 0 || s < best_seconds) best_seconds = s;
    // Defeat dead-store elimination across reps.
    b[0] = a[kElems - 1];
  }
  if (best_seconds <= 0.0) return 0.0;
  const double bytes = 3.0 * static_cast<double>(kElems) * sizeof(double);
  return bytes / best_seconds / 1e9;
}

}  // namespace

double stream_bandwidth_gbs() {
  // The env override wins on every call (not just the first), so tests
  // can pin a deterministic bandwidth regardless of call order.
  if (const char* env = std::getenv("SPMM_STREAM_BW_GBS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) return v;
  }
  static std::once_flag once;
  static double measured = 0.0;
  std::call_once(once, [] { measured = measure_stream_triad_gbs(); });
  return measured;
}

}  // namespace spmm::hwprof
