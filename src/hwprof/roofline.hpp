// Roofline analysis over benchmark cells (spmm::hwprof).
//
// Kreutzer et al. (PAPERS.md) validate sparse kernels against a roofline
// bandwidth bound: a kernel at operational intensity OI (flop/byte)
// cannot exceed OI × memory bandwidth. This header turns a cell's
// measured rate, its hardware-counter byte traffic (hwprof.hpp), and a
// per-format flop/byte traffic model into that comparison: operational
// intensity, achieved bandwidth, and the fraction of the machine's
// STREAM bandwidth the cell sustained.
//
// Bytes come from two sources, both reported:
//   measured — LLC misses × cache line (what actually crossed the LLC
//              boundary; only with a live perf backend),
//   modeled  — the compulsory-traffic model: the formatted structure
//              streamed once, the dense B panel read once, C written
//              (and read back for accumulation) once. This is the same
//              flop/byte accounting the analytical cost model
//              (src/perfmodel) uses for its memory term, reduced to
//              what a cell knows about itself.
// The roofline point prefers measured bytes and falls back to the
// model, flagged via `oi_measured` — so the no-PMU fallback path still
// yields a roofline, just a modeled one.
//
// STREAM bandwidth is calibrated once per process by a triad sweep
// (a[i] = b[i] + s·c[i] over a buffer far larger than LLC), overridable
// with SPMM_STREAM_BW_GBS for deterministic tests and CI.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spmm::hwprof {

/// Everything one cell contributes to its roofline point. All
/// per-invocation quantities (one kernel call).
struct RooflineInput {
  /// True work: 2·nnz·k.
  double flops = 0.0;
  /// Average seconds of one kernel invocation.
  double seconds = 0.0;
  /// Measured bytes per invocation (LLC misses × line); 0 = no PMU.
  double measured_bytes = 0.0;
  /// Modeled compulsory bytes per invocation (model_bytes()).
  double model_bytes = 0.0;
  /// Calibrated STREAM bandwidth of this host, GB/s.
  double stream_bw_gbs = 0.0;
};

/// One cell's position against the bandwidth roof.
struct RooflinePoint {
  /// Achieved rate, GFLOP/s (flops / seconds).
  double gflops = 0.0;
  /// Operational intensity, flop/byte — measured bytes when available,
  /// modeled otherwise.
  double oi = 0.0;
  bool oi_measured = false;
  /// Sustained memory bandwidth, GB/s (bytes / seconds).
  double achieved_bw_gbs = 0.0;
  /// achieved_bw / STREAM bandwidth, in [0, ~1] (can exceed 1 when the
  /// model overestimates traffic a cache actually absorbed).
  double stream_bw_fraction = 0.0;
  /// The bandwidth ceiling at this OI: oi × stream_bw, GFLOP/s.
  double roof_gflops = 0.0;
};

/// Combine a cell's numbers into its roofline point. Degenerate inputs
/// (zero time, zero bytes) yield zeros, never inf/NaN.
[[nodiscard]] RooflinePoint roofline(const RooflineInput& in);

/// Compulsory-traffic model for one SpMM invocation, bytes: the
/// formatted structure (values + indices, padding included — that is
/// exactly what format_bytes stores) streamed once, B (cols×k values)
/// read once, C (rows×k values) written and read back once.
[[nodiscard]] double model_bytes(std::size_t format_bytes, std::int64_t rows,
                                 std::int64_t cols, int k,
                                 std::size_t value_size);

/// This host's STREAM-triad bandwidth in GB/s. Measured once per
/// process (~tens of ms, cached); SPMM_STREAM_BW_GBS overrides the
/// measurement (checked on every call, so tests can retarget it).
[[nodiscard]] double stream_bandwidth_gbs();

}  // namespace spmm::hwprof
