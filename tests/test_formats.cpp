// Conversion round-trip and invariant tests for CSR, ELL, BCSR, BELL,
// and SELL-C-σ. Every converter must reproduce the source COO exactly
// when lowered back (padding dropped), across a parameterized family of
// matrix shapes and structures.
#include <gtest/gtest.h>

#include "formats/properties.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;

// ---------- CSR ----------

TEST(Csr, SmallMatrixLayout) {
  const auto csr = to_csr(testutil::small_coo());
  ASSERT_EQ(csr.rows(), 4);
  ASSERT_EQ(csr.nnz(), 6u);
  const AlignedVector<std::int32_t> expect_ptr = {0, 2, 2, 3, 6};
  EXPECT_EQ(csr.row_ptr(), expect_ptr);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(3), 3);
}

TEST(Csr, ValidationCatchesBadRowPtr) {
  AlignedVector<std::int32_t> ptr = {0, 2, 1};  // non-monotone
  AlignedVector<std::int32_t> col = {0, 1};
  AlignedVector<double> val = {1, 2};
  EXPECT_THROW((Csr<double, std::int32_t>(2, 2, std::move(ptr),
                                          std::move(col), std::move(val))),
               Error);
}

TEST(Csr, ValidationCatchesColumnOutOfRange) {
  AlignedVector<std::int32_t> ptr = {0, 1};
  AlignedVector<std::int32_t> col = {4};
  AlignedVector<double> val = {1};
  EXPECT_THROW((Csr<double, std::int32_t>(1, 2, std::move(ptr),
                                          std::move(col), std::move(val))),
               Error);
}

// ---------- ELL ----------

TEST(Ell, WidthIsMaxRowNnz) {
  const auto ell = to_ell(testutil::small_coo());
  EXPECT_EQ(ell.width(), 3);  // row 3 has three entries
  EXPECT_EQ(ell.nnz(), 6u);
  EXPECT_EQ(ell.padded_nnz(), 12u);  // 4 rows × width 3
  EXPECT_DOUBLE_EQ(ell.padding_ratio(), 2.0);
}

TEST(Ell, PaddingRepeatsLastRealColumn) {
  const auto ell = to_ell(testutil::small_coo());
  // Row 0 has entries at cols {0, 2}; the pad slot repeats col 2.
  EXPECT_EQ(ell.col_idx()[2], 2);
  EXPECT_DOUBLE_EQ(ell.values()[2], 0.0);
  // Row 1 is empty: pads use column 0.
  EXPECT_EQ(ell.col_idx()[3], 0);
  EXPECT_EQ(ell.col_idx()[4], 0);
}

TEST(Ell, EmptyMatrixHasZeroWidth) {
  const auto ell = to_ell(CooD(3, 3));
  EXPECT_EQ(ell.width(), 0);
  EXPECT_EQ(ell.padded_nnz(), 0u);
  EXPECT_DOUBLE_EQ(ell.padding_ratio(), 1.0);
}

// ---------- BCSR ----------

TEST(Bcsr, SmallMatrixBlocks) {
  const auto bcsr = to_bcsr(testutil::small_coo(), 2);
  EXPECT_EQ(bcsr.block_rows(), 2);
  EXPECT_EQ(bcsr.block_size(), 2);
  // Blocks touched: (0,0) [rows 0-1, cols 0-1] has (0,0);
  // (0,1) has (0,2); (1,0) has (2,1),(3,0); (1,1) has (3,2),(3,3).
  EXPECT_EQ(bcsr.nnz_blocks(), 4u);
  EXPECT_EQ(bcsr.nnz(), 6u);
  EXPECT_EQ(bcsr.padded_nnz(), 16u);
  EXPECT_DOUBLE_EQ(bcsr.fill_ratio(), 6.0 / 16.0);
}

TEST(Bcsr, TileContentsCorrect) {
  const auto bcsr = to_bcsr(testutil::small_coo(), 2);
  // First block row, first block (block col 0): entry (0,0)=1.
  const double* tile0 = bcsr.values().data();
  EXPECT_DOUBLE_EQ(tile0[0], 1.0);
  EXPECT_DOUBLE_EQ(tile0[1], 0.0);
  EXPECT_DOUBLE_EQ(tile0[2], 0.0);
  EXPECT_DOUBLE_EQ(tile0[3], 0.0);
}

TEST(Bcsr, RejectsNonPositiveBlockSize) {
  EXPECT_THROW(to_bcsr(testutil::small_coo(), 0), Error);
}

TEST(Bcsr, CountBcsrBlocksMatchesFormatter) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CooD m = testutil::random_coo(97, 97, 5.0, seed);
    for (std::int32_t b : {1, 2, 3, 4, 7, 16}) {
      const auto bcsr = to_bcsr(m, b);
      EXPECT_EQ(static_cast<std::int64_t>(bcsr.nnz_blocks()),
                count_bcsr_blocks(m, b))
          << "seed " << seed << " block " << b;
      EXPECT_NEAR(bcsr.fill_ratio(), estimate_bcsr_fill(m, b), 1e-12);
    }
  }
}

TEST(Bcsr, BlockSizeOneEqualsCsrStructure) {
  const CooD m = testutil::random_coo(50, 50, 4.0, 11);
  const auto bcsr = to_bcsr(m, 1);
  EXPECT_EQ(bcsr.nnz_blocks(), m.nnz());
  EXPECT_DOUBLE_EQ(bcsr.fill_ratio(), 1.0);
}

// ---------- BELL ----------

TEST(Bell, GroupWidthsAreLocalMaxima) {
  const auto bell = to_bell(testutil::small_coo(), 2);
  ASSERT_EQ(bell.groups(), 2);
  EXPECT_EQ(bell.width()[0], 2);  // rows 0-1: max 2
  EXPECT_EQ(bell.width()[1], 3);  // rows 2-3: max 3
  EXPECT_EQ(bell.padded_nnz(), 2u * 2u + 2u * 3u);
  EXPECT_LE(bell.padded_nnz(), to_ell(testutil::small_coo()).padded_nnz());
}

TEST(Bell, PaddingNeverExceedsEll) {
  for (std::uint64_t seed : {5u, 6u}) {
    const CooD m = testutil::random_coo(200, 200, 4.0, seed);
    const auto ell = to_ell(m);
    for (std::int32_t g : {4, 16, 64}) {
      const auto bell = to_bell(m, g);
      EXPECT_LE(bell.padded_nnz(), ell.padded_nnz()) << "group " << g;
      EXPECT_GE(bell.padded_nnz(), m.nnz());
    }
  }
}

// ---------- SELL-C ----------

TEST(SellC, PermIsAPermutation) {
  const CooD m = testutil::random_coo(100, 100, 5.0, 21);
  const auto sell = to_sellc(m, 8, 32);
  std::vector<bool> seen(100, false);
  for (auto r : sell.perm()) {
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 100);
    ASSERT_FALSE(seen[static_cast<usize>(r)]);
    seen[static_cast<usize>(r)] = true;
  }
}

TEST(SellC, SigmaWindowsSortDescending) {
  const CooD m = testutil::random_coo(64, 64, 5.0, 23);
  const auto csr = to_csr(m);
  const std::int32_t sigma = 16;
  const auto sell = to_sellc(m, 8, sigma);
  for (std::int32_t w = 0; w + sigma <= 64; w += sigma) {
    for (std::int32_t i = 1; i < sigma; ++i) {
      EXPECT_GE(csr.row_nnz(sell.perm()[static_cast<usize>(w + i - 1)]),
                csr.row_nnz(sell.perm()[static_cast<usize>(w + i)]));
    }
  }
}

TEST(SellC, SortingReducesPaddingOnSkewedMatrix) {
  // torso1-like: ~6% heavy rows scattered through the matrix. Unsorted,
  // nearly every chunk contains one and pays its width; sorted, the heavy
  // rows share a few chunks.
  gen::MatrixSpec spec;
  spec.name = "skewed";
  spec.rows = spec.cols = 512;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.mean = 4;
  spec.row_dist.max_nnz = 400;
  spec.row_dist.heavy_fraction = 0.06;
  spec.row_dist.heavy_min = 300;
  spec.row_dist.heavy_max = 400;
  spec.placement.kind = gen::Placement::kScattered;
  const auto m = gen::generate<double, std::int32_t>(spec);

  const auto unsorted = to_sellc(m, 32, 1);       // σ=1: no sorting
  const auto sorted = to_sellc(m, 32, 512);       // global sorting
  EXPECT_LT(sorted.padded_nnz(), unsorted.padded_nnz());
}

TEST(SellC, RejectsBadSigma) {
  EXPECT_THROW(to_sellc(testutil::small_coo(), 4, 6), Error);
}

// ---------- round trips (parameterized over structure and converter) ----

struct RoundTripCase {
  std::string name;
  std::int64_t rows;
  double avg;
  gen::Placement placement;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  CooD matrix() const {
    const auto& p = GetParam();
    return testutil::random_coo(p.rows, p.rows, p.avg, 777, p.placement);
  }
};

TEST_P(RoundTripTest, Csr) {
  const CooD m = matrix();
  EXPECT_EQ(to_coo(to_csr(m)), m);
}

TEST_P(RoundTripTest, Ell) {
  const CooD m = matrix();
  EXPECT_EQ(to_coo(to_ell(m)), m);
}

TEST_P(RoundTripTest, BcsrSeveralBlockSizes) {
  const CooD m = matrix();
  for (std::int32_t b : {1, 2, 3, 4, 5, 16}) {
    EXPECT_EQ(to_coo(to_bcsr(m, b)), m) << "block " << b;
  }
}

TEST_P(RoundTripTest, Bell) {
  const CooD m = matrix();
  for (std::int32_t g : {1, 3, 8, 32}) {
    EXPECT_EQ(to_coo(to_bell(m, g)), m) << "group " << g;
  }
}

TEST_P(RoundTripTest, SellC) {
  const CooD m = matrix();
  EXPECT_EQ(to_coo(to_sellc(m, 4, 16)), m);
  EXPECT_EQ(to_coo(to_sellc(m, 8, 8)), m);
  EXPECT_EQ(to_coo(to_sellc(m, 16, 1)), m);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, RoundTripTest,
    ::testing::Values(
        RoundTripCase{"tiny", 5, 2.0, gen::Placement::kScattered},
        RoundTripCase{"scattered", 120, 6.0, gen::Placement::kScattered},
        RoundTripCase{"banded", 120, 6.0, gen::Placement::kBanded},
        RoundTripCase{"clustered", 120, 9.0, gen::Placement::kClustered},
        RoundTripCase{"nondividing", 131, 5.0, gen::Placement::kClustered}),
    [](const auto& info) { return info.param.name; });

// 64-bit indices and float values round-trip too (§6.3.5 type matrix).
TEST(RoundTrip, Float64BitIndices) {
  gen::MatrixSpec spec;
  spec.name = "f32i64";
  spec.rows = spec.cols = 60;
  spec.row_dist.mean = 4;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.max_nnz = 8;
  spec.placement.kind = gen::Placement::kScattered;
  const auto m = gen::generate<float, std::int64_t>(spec);
  EXPECT_EQ(to_coo(to_csr(m)), m);
  EXPECT_EQ(to_coo(to_ell(m)), m);
  EXPECT_EQ(to_coo(to_bcsr(m, std::int64_t{4})), m);
}

// ---------- memory footprint (§6.3.5) ----------

TEST(Footprint, NarrowTypesHalveStorage) {
  gen::MatrixSpec spec;
  spec.name = "foot";
  spec.rows = spec.cols = 128;
  spec.row_dist.mean = 6;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.max_nnz = 6;
  spec.placement.kind = gen::Placement::kScattered;
  const auto wide = gen::generate<double, std::int64_t>(spec);
  const auto narrow = gen::generate<float, std::int32_t>(spec);
  ASSERT_EQ(wide.nnz(), narrow.nnz());
  EXPECT_EQ(wide.bytes(), 2 * narrow.bytes());
}

TEST(Footprint, CsrSmallerThanCoo) {
  const CooD m = testutil::random_coo(300, 300, 6.0, 31);
  EXPECT_LT(to_csr(m).bytes(), m.bytes());
}

}  // namespace
}  // namespace spmm
