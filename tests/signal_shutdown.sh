#!/usr/bin/env bash
# Graceful-shutdown harness (docs/ROBUSTNESS.md, "Graceful shutdown and
# the campaign deadline"). Sends SIGINT and SIGTERM to a live campaign
# and asserts the cooperative contract: exit 3, a valid partial CSV
# flushed, a resumable journal — and that resuming completes the
# campaign with a CSV byte-identical to an uninterrupted run. Usage:
#
#   signal_shutdown.sh <spmm_bench_cli> <scratch-dir>
set -u

CLI=$1
SCRATCH=$2

# Same deterministic six-cell campaign as chaos_kill_resume.sh, slowed
# to ~400 ms per cell so the signal reliably lands mid-campaign.
ARGS=(--matrix bcsstk13 --scale 0.3 --format coo,csr,ell
      --variant serial,omp -n 2 -w 0 -k 16 --deterministic)
STALL=(--faults "cell.stall@always,ms=400")

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
fail() { echo "signal_shutdown: FAIL: $*" >&2; exit 1; }

echo "== reference (uninterrupted) run"
"$CLI" "${ARGS[@]}" --csv "$SCRATCH/ref.csv" \
       --journal "$SCRATCH/ref.jnl" > "$SCRATCH/ref.log" 2>&1 \
  || fail "reference run exited $?"
REF_ROWS=$(wc -l < "$SCRATCH/ref.csv")

for SIG in INT TERM; do
  echo "== SIG$SIG mid-campaign"
  CSV="$SCRATCH/sig_$SIG.csv"
  JNL="$SCRATCH/sig_$SIG.jnl"
  LOG="$SCRATCH/sig_$SIG.log"
  rm -f "$CSV" "$JNL"

  "$CLI" "${ARGS[@]}" "${STALL[@]}" --csv "$CSV" --journal "$JNL" \
         > "$LOG" 2>&1 &
  PID=$!
  sleep 1.2
  kill -$SIG $PID 2>/dev/null || fail "SIG$SIG: campaign already gone"
  wait $PID
  STATUS=$?
  [ "$STATUS" -eq 3 ] || fail "SIG$SIG: exited $STATUS, want 3"
  grep -q "campaign interrupted (signal)" "$LOG" \
    || fail "SIG$SIG: missing interruption notice"

  # Partial CSV: flushed, valid header, fewer rows than a full run.
  [ -s "$CSV" ] || fail "SIG$SIG: partial CSV not flushed"
  head -1 "$CSV" | grep -q "^matrix," \
    || fail "SIG$SIG: partial CSV missing header"
  ROWS=$(wc -l < "$CSV")
  [ "$ROWS" -ge 2 ] || fail "SIG$SIG: partial CSV has no data rows"
  [ "$ROWS" -lt "$REF_ROWS" ] || fail "SIG$SIG: campaign was not interrupted"

  # Journal: durable and resumable — completing the campaign must
  # reproduce the uninterrupted CSV byte for byte.
  [ -s "$JNL" ] || fail "SIG$SIG: no journal flushed"
  "$CLI" "${ARGS[@]}" --csv "$CSV" --journal "$JNL" --resume \
         > "$SCRATCH/sig_$SIG.resume.log" 2>&1 \
    || fail "SIG$SIG: resume exited $?"
  cmp -s "$SCRATCH/ref.csv" "$CSV" \
    || fail "SIG$SIG: resumed CSV differs from the reference"
  echo "   exit 3, partial CSV valid, resume byte-identical"
done

echo "signal_shutdown: PASS"
