// Tests for Matrix Market I/O and the BCSR disk cache (§6.3.2).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/bcsr_cache.hpp"
#include "io/matrix_market.hpp"
#include "resilience/errors.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;

CooD parse(const std::string& text) {
  std::istringstream in(text);
  return io::read_matrix_market<double, std::int32_t>(in);
}

TEST(MatrixMarket, ParsesGeneralReal) {
  const CooD m = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1\n");
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.value(0), 2.5);
  EXPECT_EQ(m.row(1), 2);
  EXPECT_EQ(m.col(1), 3);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  const CooD m = parse(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1\n"
      "2 1 5\n"
      "3 2 7\n");
  // Off-diagonal entries mirrored: nnz = 1 + 2 + 2.
  ASSERT_EQ(m.nnz(), 5u);
  const auto d = to_dense(m);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 7.0);
}

TEST(MatrixMarket, ExpandsSkewSymmetric) {
  const CooD m = parse(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  const auto d = to_dense(m);
  EXPECT_DOUBLE_EQ(d.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), -3.0);
}

TEST(MatrixMarket, PatternGetsUnitValues) {
  const CooD m = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.value(0), 1.0);
  EXPECT_DOUBLE_EQ(m.value(1), 1.0);
}

TEST(MatrixMarket, RejectsBadInputs) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("not a banner\n1 1 0\n"), Error);
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n1 1\n1\n"),
               Error);
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
      Error);
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"),
      Error);
  // Entry out of range.
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n5 1 1.0\n"),
               Error);
  // Truncated: promises 2 entries, delivers 1.
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n1 1 1.0\n"),
               Error);
  // Pattern entry with no value is fine, real entry missing value is not.
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n1 1\n"),
               Error);
}

// Helper: parse and return the typed error for assertion on code + line.
resilience::InputError capture_error(const std::string& text) {
  try {
    parse(text);
  } catch (const resilience::InputError& e) {
    return e;
  }
  return resilience::InputError("none", "no error thrown");
}

TEST(MatrixMarket, ErrorsCarryCodeAndLineNumber) {
  const auto truncated = capture_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_EQ(truncated.error_code(), "input.truncated");
  EXPECT_NE(std::string(truncated.what()).find("line 3"), std::string::npos);

  const auto bad_entry = capture_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "x y z\n");
  EXPECT_EQ(bad_entry.error_code(), "input.parse");
  EXPECT_NE(std::string(bad_entry.what()).find("line 3"), std::string::npos);

  const auto out_of_range = capture_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "5 1 1.0\n");
  EXPECT_EQ(out_of_range.error_code(), "input.index");
}

TEST(MatrixMarket, RejectsNonFiniteValues) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    const auto e = capture_error(
        std::string("%%MatrixMarket matrix coordinate real general\n"
                    "2 2 1\n"
                    "1 1 ") + bad + "\n");
    EXPECT_EQ(e.error_code(), "input.nonfinite") << bad;
  }
}

TEST(MatrixMarket, RejectsIndexTypeOverflow) {
  // 3e9 rows fits the file format but not a 32-bit index.
  const auto e = capture_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "3000000000 2 0\n");
  EXPECT_EQ(e.error_code(), "input.index");
  EXPECT_NE(std::string(e.what()).find("32-bit"), std::string::npos);
}

TEST(MatrixMarket, RejectsTrailingGarbage) {
  const auto e = capture_error(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 1.0 surprise\n");
  EXPECT_EQ(e.error_code(), "input.parse");
}

TEST(MatrixMarket, RoundTripExact) {
  const CooD m = testutil::random_coo(64, 80, 4.0, 77);
  std::stringstream buf;
  io::write_matrix_market(buf, m);
  const CooD back = io::read_matrix_market<double, std::int32_t>(buf);
  EXPECT_EQ(back, m);
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "spmm_mm_test.mtx").string();
  const CooD m = testutil::small_coo();
  io::write_matrix_market_file(path, m);
  const CooD back = io::read_matrix_market_file<double, std::int32_t>(path);
  EXPECT_EQ(back, m);
  std::remove(path.c_str());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((io::read_matrix_market_file<double, std::int32_t>(
                   "/no/such/file.mtx")),
               Error);
}

TEST(BcsrCache, StreamRoundTrip) {
  const CooD m = testutil::random_coo(90, 90, 5.0, 13);
  const auto bcsr = to_bcsr(m, 4);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_bcsr_cache(buf, bcsr);
  const auto back = io::read_bcsr_cache<double, std::int32_t>(buf);
  EXPECT_EQ(back, bcsr);
}

TEST(BcsrCache, FileRoundTripAllBlockSizes) {
  const CooD m = testutil::random_coo(77, 77, 4.0, 17);
  const auto path =
      (std::filesystem::temp_directory_path() / "spmm_bcsr_test.bin").string();
  for (std::int32_t b : {1, 2, 4, 16}) {
    const auto bcsr = to_bcsr(m, b);
    io::write_bcsr_cache_file(path, bcsr);
    const auto back = io::read_bcsr_cache_file<double, std::int32_t>(path);
    EXPECT_EQ(back, bcsr) << "block " << b;
  }
  std::remove(path.c_str());
}

TEST(BcsrCache, RejectsBadMagic) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << "NOTACACHEFILE-------------------";
  EXPECT_THROW((io::read_bcsr_cache<double, std::int32_t>(buf)), Error);
}

TEST(BcsrCache, RejectsTypeWidthMismatch) {
  const CooD m = testutil::small_coo();
  const auto bcsr = to_bcsr(m, 2);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_bcsr_cache(buf, bcsr);
  // Written with double/int32; reading as float/int32 must fail loudly.
  EXPECT_THROW((io::read_bcsr_cache<float, std::int32_t>(buf)), Error);
}

TEST(BcsrCache, RejectsTruncated) {
  const CooD m = testutil::small_coo();
  const auto bcsr = to_bcsr(m, 2);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_bcsr_cache(full, bcsr);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((io::read_bcsr_cache<double, std::int32_t>(cut)), Error);
}

TEST(BcsrCache, RejectsBitFlippedPayload) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 23);
  const auto bcsr = to_bcsr(m, 2);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_bcsr_cache(full, bcsr);
  std::string bytes = full.str();
  bytes[bytes.size() / 2] ^= 0x01;  // one flipped bit mid-payload
  std::stringstream bad(bytes, std::ios::in | std::ios::binary);
  try {
    io::read_bcsr_cache<double, std::int32_t>(bad);
    FAIL() << "expected cache.corrupt";
  } catch (const resilience::InputError& e) {
    EXPECT_EQ(e.error_code(), "cache.corrupt");
  }
}

TEST(BcsrCache, TryReadTreatsCorruptionAsMiss) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 29);
  const auto bcsr = to_bcsr(m, 4);
  const auto path = (std::filesystem::temp_directory_path() /
                     "spmm_bcsr_tryread.bin")
                        .string();
  auto sink = std::make_shared<telemetry::MemorySink>();
  telemetry::Session session(sink);

  // Missing file: miss, no throw.
  std::remove(path.c_str());
  EXPECT_EQ((io::try_read_bcsr_cache_file<double, std::int32_t>(path,
                                                                &session)),
            std::nullopt);

  // Intact file: hit.
  io::write_bcsr_cache_file(path, bcsr);
  const auto hit =
      io::try_read_bcsr_cache_file<double, std::int32_t>(path, &session);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, bcsr);

  // Truncated file: evicted (miss), regeneration is the caller's job.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ((io::try_read_bcsr_cache_file<double, std::int32_t>(path,
                                                                &session)),
            std::nullopt);
  std::remove(path.c_str());

  double miss = 0.0, evict = 0.0;
  for (const telemetry::Event& e : sink->events()) {
    if (e.kind != telemetry::EventKind::kCounter) continue;
    if (e.name == "cache.miss") miss += e.value;
    if (e.name == "cache.evict") evict += e.value;
  }
  EXPECT_EQ(miss, 1.0);
  EXPECT_EQ(evict, 1.0);
}

TEST(BcsrCache, CachedMatrixMultipliesCorrectly) {
  // The §6.3.2 workflow: format once, cache, reload, compute.
  const CooD m = testutil::random_coo(60, 60, 5.0, 19);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_bcsr_cache(buf, to_bcsr(m, 4));
  const auto bcsr = io::read_bcsr_cache<double, std::int32_t>(buf);
  EXPECT_EQ(to_coo(bcsr), m);
}

}  // namespace
}  // namespace spmm
