// End-to-end smoke: generate a suite matrix, run every core format's
// serial kernel through the benchmark class, verify against the COO
// reference.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "gen/suite.hpp"

namespace spmm {
namespace {

TEST(Smoke, AllCoreFormatsVerify) {
  const auto spec = gen::suite_spec("bcsstk13", 1.0);
  const auto coo = gen::generate<double, std::int32_t>(spec);

  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 16;
  params.threads = 2;
  params.block_size = 4;

  for (Format f : kCoreFormats) {
    const auto r = bench::run_benchmark<double, std::int32_t>(
        f, Variant::kSerial, coo, params, "bcsstk13");
    EXPECT_TRUE(r.verified) << format_name(f) << " max err "
                            << r.max_abs_error;
    EXPECT_GT(r.mflops, 0.0);
  }
}

}  // namespace
}  // namespace spmm
