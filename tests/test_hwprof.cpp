// Tests for the hwprof subsystem: the roofline math and byte model, the
// STREAM-bandwidth env override, the CounterSet availability contract
// (graceful degradation to the no-op backend — the path containers and
// CI exercise), and the benchmark integration: hw fields populated on
// profiled runs, bit-identical kernel results with profiling on vs off,
// and the null path (profiling off) leaving the result untouched.
//
// None of these tests require a PMU. The ones that exercise the live
// perf_event backend are conditional on hwprof::available(), so the
// suite passes identically on bare metal, in VMs, and under seccomp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "core/runner.hpp"
#include "hwprof/hwprof.hpp"
#include "hwprof/roofline.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace spmm::hwprof {
namespace {

using testutil::CooD;

// Scoped environment override (POSIX setenv; the test binary is
// single-threaded, so this is safe).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 3;
  p.warmup = 1;
  p.threads = 2;
  p.k = k;
  return p;
}

TEST(Roofline, ModeledPoint) {
  RooflineInput in;
  in.flops = 2e9;
  in.seconds = 1.0;
  in.model_bytes = 1e9;
  in.stream_bw_gbs = 10.0;
  const RooflinePoint pt = roofline(in);
  EXPECT_DOUBLE_EQ(pt.gflops, 2.0);
  EXPECT_DOUBLE_EQ(pt.oi, 2.0);
  EXPECT_FALSE(pt.oi_measured);
  EXPECT_DOUBLE_EQ(pt.achieved_bw_gbs, 1.0);
  EXPECT_DOUBLE_EQ(pt.stream_bw_fraction, 0.1);
  EXPECT_DOUBLE_EQ(pt.roof_gflops, 20.0);
}

TEST(Roofline, MeasuredBytesPreferred) {
  RooflineInput in;
  in.flops = 2e9;
  in.seconds = 1.0;
  in.measured_bytes = 5e8;
  in.model_bytes = 1e9;
  in.stream_bw_gbs = 10.0;
  const RooflinePoint pt = roofline(in);
  EXPECT_DOUBLE_EQ(pt.oi, 4.0);
  EXPECT_TRUE(pt.oi_measured);
  EXPECT_DOUBLE_EQ(pt.achieved_bw_gbs, 0.5);
}

TEST(Roofline, DegenerateInputsYieldZerosNotNan) {
  const RooflinePoint pt = roofline(RooflineInput{});
  EXPECT_EQ(pt.gflops, 0.0);
  EXPECT_EQ(pt.oi, 0.0);
  EXPECT_EQ(pt.achieved_bw_gbs, 0.0);
  EXPECT_EQ(pt.stream_bw_fraction, 0.0);
  EXPECT_EQ(pt.roof_gflops, 0.0);
  EXPECT_TRUE(std::isfinite(pt.gflops));
  EXPECT_TRUE(std::isfinite(pt.oi));
}

TEST(Roofline, ModelBytesAccountsAllThreeOperands) {
  // format structure once + B (cols×k) read + C (rows×k) written and
  // read back: format_bytes + cols·k·vs + 2·rows·k·vs.
  const double bytes = model_bytes(1000, 10, 20, 4, 8);
  EXPECT_DOUBLE_EQ(bytes, 1000.0 + 20.0 * 4 * 8 + 2.0 * 10 * 4 * 8);
}

TEST(Roofline, StreamBandwidthEnvOverride) {
  ScopedEnv bw("SPMM_STREAM_BW_GBS", "33.5");
  EXPECT_DOUBLE_EQ(stream_bandwidth_gbs(), 33.5);
}

TEST(CounterSet, EnvForcesNoopBackend) {
  ScopedEnv off("SPMM_HWPROF", "off");
  EXPECT_TRUE(disabled_by_env());
  EXPECT_FALSE(available());
  CounterSet set;
  EXPECT_EQ(set.backend(), Backend::kNone);
  set.start();
  set.stop();
  const CounterDeltas d = set.read();
  EXPECT_EQ(d.backend, Backend::kNone);
  for (int i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    EXPECT_EQ(d.value(c), 0.0);
    EXPECT_FALSE(d.has(c));
  }
  EXPECT_EQ(d.ipc(), 0.0);
  EXPECT_EQ(d.llc_miss_bytes(), 0.0);
  EXPECT_EQ(backend_name(d.backend), "none");
}

TEST(CounterSet, LiveBackendCountsWork) {
  if (!available()) {
    GTEST_SKIP() << "perf_event counters unavailable in this environment";
  }
  CounterSet set;
  ASSERT_EQ(set.backend(), Backend::kPerfEvent);
  set.start();
  // Enough work that cycles/instructions cannot plausibly read zero.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  set.stop();
  const CounterDeltas d = set.read();
  EXPECT_EQ(d.backend, Backend::kPerfEvent);
  EXPECT_TRUE(d.has(Counter::kCycles));
  EXPECT_TRUE(d.has(Counter::kInstructions));
  EXPECT_GT(d.value(Counter::kCycles), 0.0);
  EXPECT_GT(d.value(Counter::kInstructions), 0.0);
  EXPECT_GT(d.ipc(), 0.0);
}

TEST(CounterSet, RestartResetsTheWindow) {
  if (!available()) {
    GTEST_SKIP() << "perf_event counters unavailable in this environment";
  }
  CounterSet set;
  set.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + 1.0;
  set.stop();
  const double big = set.read().value(Counter::kInstructions);
  set.start();  // fresh window: the million-add loop must not carry over
  set.stop();
  const double small = set.read().value(Counter::kInstructions);
  EXPECT_LT(small, big);
}

// --- Benchmark integration ---------------------------------------------

// The no-op fallback is the acceptance contract: with counters forced
// off, a profiled run still succeeds, reports hw_backend "none" with
// zeroed counter deltas, and the roofline half (modeled bytes + wall
// time) is still populated.
TEST(BenchmarkHwprof, FallbackReportsNoneWithZeroDeltasAndRoofline) {
  ScopedEnv off("SPMM_HWPROF", "off");
  ScopedEnv bw("SPMM_STREAM_BW_GBS", "25");
  BenchParams p = fast_params();
  p.hw_counters = true;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, testutil::random_coo(64, 64, 6), p,
      "rnd");
  EXPECT_TRUE(r.hw_profiled);
  EXPECT_EQ(r.hw_backend, "none");
  EXPECT_EQ(r.hw_cycles, 0.0);
  EXPECT_EQ(r.hw_instructions, 0.0);
  EXPECT_EQ(r.hw_ipc, 0.0);
  EXPECT_EQ(r.llc_miss_per_nnz, 0.0);
  EXPECT_EQ(r.measured_bytes, 0.0);
  // Modeled roofline: OI and the STREAM fraction need no counters.
  EXPECT_GT(r.operational_intensity, 0.0);
  EXPECT_GT(r.achieved_bw_gbs, 0.0);
  EXPECT_GT(r.stream_bw_fraction, 0.0);
  EXPECT_TRUE(r.verified);
}

TEST(BenchmarkHwprof, LiveBackendYieldsNonzeroCountersAndIpc) {
  if (!available()) {
    GTEST_SKIP() << "perf_event counters unavailable in this environment";
  }
  ScopedEnv bw("SPMM_STREAM_BW_GBS", "25");
  BenchParams p = fast_params();
  p.hw_counters = true;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, testutil::random_coo(64, 64, 6), p,
      "rnd");
  EXPECT_EQ(r.hw_backend, "perf_event");
  EXPECT_GT(r.hw_cycles, 0.0);
  EXPECT_GT(r.hw_instructions, 0.0);
  EXPECT_GT(r.hw_ipc, 0.0);
}

// Profiling must not perturb the computation: the kernel output (and
// with it the verification error) is bit-identical with profiling on
// and off — same matrix, same seed, same kernel.
TEST(BenchmarkHwprof, ProfilingOnVsOffIsBitIdentical) {
  ScopedEnv bw("SPMM_STREAM_BW_GBS", "25");
  const CooD coo = testutil::random_coo(96, 96, 5);

  auto off_bench = bench::make_benchmark<double, std::int32_t>(Format::kCsr);
  off_bench->setup(coo, fast_params(), "rnd");
  const auto r_off = off_bench->run(Variant::kSerial);

  BenchParams p = fast_params();
  p.hw_counters = true;
  auto on_bench = bench::make_benchmark<double, std::int32_t>(Format::kCsr);
  on_bench->setup(coo, p, "rnd");
  const auto r_on = on_bench->run(Variant::kSerial);

  ASSERT_EQ(off_bench->c().rows(), on_bench->c().rows());
  ASSERT_EQ(off_bench->c().cols(), on_bench->c().cols());
  EXPECT_EQ(max_abs_diff(off_bench->c(), on_bench->c()), 0.0);
  EXPECT_EQ(r_off.max_abs_error, r_on.max_abs_error);
  EXPECT_TRUE(r_on.verified);
}

// Null-path regression: with hw_counters off (the default), the run
// must not touch any hw field — the result reads exactly as the
// pre-hwprof suite produced it.
TEST(BenchmarkHwprof, DisabledProfilingLeavesResultUntouched) {
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, testutil::random_coo(64, 64, 6),
      fast_params(), "rnd");
  EXPECT_FALSE(r.hw_profiled);
  EXPECT_EQ(r.hw_backend, "none");
  EXPECT_EQ(r.hw_cycles, 0.0);
  EXPECT_EQ(r.hw_ipc, 0.0);
  EXPECT_EQ(r.operational_intensity, 0.0);
  EXPECT_EQ(r.stream_bw_fraction, 0.0);
  EXPECT_EQ(r.measured_bytes, 0.0);
}

// Profiled runs with a sink attached emit the roofline ingredient
// counters whatever the backend (hw.flops / hw.bytes / hw.stream_bw_gbs
// feed trace_report's roofline section in counter-denied environments).
TEST(BenchmarkHwprof, TelemetryCarriesRooflineIngredients) {
  ScopedEnv bw("SPMM_STREAM_BW_GBS", "25");
  auto mem = std::make_shared<telemetry::MemorySink>();
  BenchParams p = fast_params();
  p.hw_counters = true;
  p.sink = mem;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, testutil::random_coo(64, 64, 6), p,
      "rnd");
  EXPECT_TRUE(r.hw_profiled);
  double flops = 0.0, bytes = 0.0, stream = 0.0;
  for (const telemetry::Event& e : mem->events()) {
    if (e.kind != telemetry::EventKind::kCounter) continue;
    if (e.name == "hw.flops") flops = e.value;
    if (e.name == "hw.bytes") bytes = e.value;
    if (e.name == "hw.stream_bw_gbs") stream = e.value;
  }
  // Loop totals: per-invocation flops × iterations.
  EXPECT_DOUBLE_EQ(flops, r.flops * p.iterations);
  EXPECT_GT(bytes, 0.0);
  EXPECT_DOUBLE_EQ(stream, 25.0);
}

}  // namespace
}  // namespace spmm::hwprof
