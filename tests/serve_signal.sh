#!/usr/bin/env bash
# Cooperative-drain harness for the serving engine (docs/SERVING.md,
# "Shutdown"). SIGINTs a live paced serve run and asserts the
# contract: admission stops, already-admitted requests drain, the
# summary still prints, and the process exits 3 (kExitInterrupted).
# Usage:
#
#   serve_signal.sh <spmm_serve> <scratch-dir>
set -u

SERVE=$1
SCRATCH=$2

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
fail() { echo "serve_signal: FAIL: $*" >&2; exit 1; }

# Paced open-loop stream (~10 s at 20 req/s) so the signal reliably
# lands mid-run; tiny matrices keep each batch fast to drain.
ARGS=(--requests 200 --arrival-rate 20 --tenants 3 --scale 0.05
      --workers 2 -t 2 -k 8)

for SIG in INT TERM; do
  echo "== SIG$SIG mid-run"
  LOG="$SCRATCH/sig_$SIG.log"
  "$SERVE" "${ARGS[@]}" > "$LOG" 2>&1 &
  PID=$!
  sleep 1.5
  kill -$SIG $PID 2>/dev/null || fail "SIG$SIG: serve already gone"
  wait $PID
  STATUS=$?
  [ "$STATUS" -eq 3 ] || fail "SIG$SIG: exited $STATUS, want 3"
  grep -q "serve interrupted (signal)" "$LOG" \
    || fail "SIG$SIG: missing interruption notice"
  # Admitted work drained: the summary prints with completions, and
  # the stream was genuinely cut short of all 200 requests.
  grep -q "^serve: " "$LOG" || fail "SIG$SIG: summary not printed"
  OK=$(sed -n 's/^serve: \([0-9]*\) ok.*/\1/p' "$LOG")
  [ -n "$OK" ] || fail "SIG$SIG: cannot parse completion count"
  [ "$OK" -ge 1 ] || fail "SIG$SIG: nothing completed before drain"
  [ "$OK" -lt 200 ] || fail "SIG$SIG: run was not interrupted"
  echo "   exit 3, drained with $OK completed"
done

echo "serve_signal: PASS"
