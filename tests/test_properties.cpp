// Tests for the matrix property metrics (Table 5.1, paper §4.3) and the
// generator suite's fidelity to the published statistics.
#include <gtest/gtest.h>

#include "formats/properties.hpp"
#include "gen/suite.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

TEST(Properties, SmallMatrixExactValues) {
  const auto p = compute_properties(testutil::small_coo(), "small");
  EXPECT_EQ(p.rows, 4);
  EXPECT_EQ(p.cols, 4);
  EXPECT_EQ(p.nnz, 6);
  EXPECT_EQ(p.max_row_nnz, 3);
  EXPECT_DOUBLE_EQ(p.avg_row_nnz, 1.5);
  EXPECT_DOUBLE_EQ(p.column_ratio, 2.0);
  // Row counts {2, 0, 1, 3}: population variance 1.25.
  EXPECT_DOUBLE_EQ(p.row_nnz_variance, 1.25);
  EXPECT_DOUBLE_EQ(p.ell_padding_ratio, 4.0 * 3.0 / 6.0);
}

TEST(Properties, EmptyMatrix) {
  const auto p = compute_properties(testutil::CooD(8, 8), "empty");
  EXPECT_EQ(p.nnz, 0);
  EXPECT_EQ(p.max_row_nnz, 0);
  EXPECT_DOUBLE_EQ(p.avg_row_nnz, 0.0);
  EXPECT_DOUBLE_EQ(p.column_ratio, 0.0);
}

TEST(Properties, DiagonalMatrixHasZeroBandwidth) {
  AlignedVector<std::int32_t> r = {0, 1, 2};
  AlignedVector<std::int32_t> c = {0, 1, 2};
  AlignedVector<double> v = {1, 1, 1};
  const testutil::CooD m(3, 3, std::move(r), std::move(c), std::move(v));
  const auto p = compute_properties(m);
  EXPECT_DOUBLE_EQ(p.normalized_bandwidth, 0.0);
}

TEST(Properties, BandedLocalityBeatsScattered) {
  const auto banded = compute_properties(
      testutil::random_coo(400, 400, 6.0, 3, gen::Placement::kBanded));
  const auto scattered = compute_properties(
      testutil::random_coo(400, 400, 6.0, 3, gen::Placement::kScattered));
  EXPECT_LT(banded.normalized_bandwidth, scattered.normalized_bandwidth);
  EXPECT_LT(banded.normalized_row_gap, scattered.normalized_row_gap);
}

TEST(Properties, ClusteredRowsHaveDenserBlocks) {
  const auto clustered =
      testutil::random_coo(400, 400, 8.0, 3, gen::Placement::kClustered);
  const auto scattered =
      testutil::random_coo(400, 400, 8.0, 3, gen::Placement::kScattered);
  EXPECT_GT(estimate_bcsr_fill(clustered, 4), estimate_bcsr_fill(scattered, 4));
}

TEST(Properties, StreamPrinting) {
  std::ostringstream os;
  os << compute_properties(testutil::small_coo(), "small");
  EXPECT_NE(os.str().find("small"), std::string::npos);
  EXPECT_NE(os.str().find("nnz=6"), std::string::npos);
}

// --- suite fidelity: each generated profile must land on Table 5.1 ---

class SuiteFidelityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteFidelityTest, RowStatisticsMatchPaper) {
  const std::string name = GetParam();
  const gen::PaperRow& row = gen::paper_row(name);
  // Row statistics are scale-invariant; a modest scale keeps tests fast.
  const auto coo = gen::generate<double, std::int32_t>(
      gen::suite_spec(name, 0.05));
  const auto p = compute_properties(coo, name);

  // Max is pinned exactly by the forced row.
  EXPECT_EQ(p.max_row_nnz, row.max);
  // Average within 25% (published values are themselves rounded).
  EXPECT_NEAR(p.avg_row_nnz, static_cast<double>(row.avg),
              std::max(1.0, 0.25 * static_cast<double>(row.avg)));
  // Column ratio within 35%.
  EXPECT_NEAR(p.column_ratio, static_cast<double>(row.ratio),
              std::max(1.0, 0.35 * static_cast<double>(row.ratio)));
  // Standard deviation within 40% (or ±1.5 for the ≈0 profiles).
  EXPECT_NEAR(p.row_nnz_stddev, static_cast<double>(row.stddev),
              std::max(1.5, 0.4 * static_cast<double>(row.stddev)));
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, SuiteFidelityTest,
                         ::testing::ValuesIn(gen::suite_names()),
                         [](const auto& info) { return info.param; });

TEST(Suite, FourteenMatricesInPaperOrder) {
  const auto& names = gen::suite_names();
  ASSERT_EQ(names.size(), 14u);
  EXPECT_EQ(names.front(), "2cubes_sphere");
  EXPECT_EQ(names.back(), "x104");
}

TEST(Suite, CusparseSubsetDropsFiveLargest) {
  const auto& subset = gen::cusparse_subset();
  EXPECT_EQ(subset.size(), 9u);
  for (const char* dropped :
       {"nd24k", "torso1", "crankseg_2", "x104", "rma10"}) {
    EXPECT_EQ(std::find(subset.begin(), subset.end(), dropped), subset.end())
        << dropped << " should be excluded (exceeded device memory)";
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(gen::paper_row("not_a_matrix"), Error);
  EXPECT_THROW(gen::suite_spec("not_a_matrix"), Error);
}

TEST(Suite, ScaleShrinksRowsOnly) {
  const auto full = gen::suite_spec("cant", 1.0);
  const auto half = gen::suite_spec("cant", 0.5);
  EXPECT_EQ(half.rows, full.rows / 2 + (full.rows % 2));
  EXPECT_DOUBLE_EQ(half.row_dist.mean, full.row_dist.mean);
}

TEST(Suite, InvalidScaleThrows) {
  EXPECT_THROW(gen::suite_spec("cant", 0.0), Error);
  EXPECT_THROW(gen::suite_spec("cant", 1.5), Error);
}

TEST(Suite, FullScaleMatchesPublishedSizeAndNnz) {
  // bcsstk13 is small enough (2003 rows) to generate at full scale: the
  // Size and Non-zeros columns of Table 5.1 must land too, not just the
  // per-row statistics.
  const gen::PaperRow& row = gen::paper_row("bcsstk13");
  const auto coo = gen::generate<double, std::int32_t>(
      gen::suite_spec("bcsstk13", 1.0));
  EXPECT_EQ(coo.rows(), row.size);
  EXPECT_EQ(coo.cols(), row.size);
  EXPECT_NEAR(static_cast<double>(coo.nnz()), static_cast<double>(row.nnz),
              0.15 * static_cast<double>(row.nnz));
}

TEST(Suite, GenerationIsDeterministic) {
  const auto a = gen::generate<double, std::int32_t>(gen::suite_spec("dw4096", 0.1));
  const auto b = gen::generate<double, std::int32_t>(gen::suite_spec("dw4096", 0.1));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace spmm
