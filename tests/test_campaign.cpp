// Tests for crash-safe campaigns: the durable cell journal (encode /
// decode, torn-tail recovery, checksum rejection, open-without-resume
// refusal), the CSV string codec (csv_cells round-trip, strip_volatile
// determinism), run_plan_campaign (fresh vs replayed cells, stop at
// cell boundaries), the StopController latch/deadline, atomic file
// publication, and the journal fault sites' plan grammar.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "resilience/campaign_journal.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/shutdown.hpp"
#include "support/atomic_file.hpp"
#include "test_util.hpp"

namespace spmm::bench {
namespace {

using resilience::CampaignJournal;
using resilience::JournalRecord;
using resilience::StopController;
using resilience::StopReason;
using testutil::CooD;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 2;
  p.warmup = 0;
  p.threads = 2;
  p.block_size = 4;
  p.k = k;
  p.verify = false;
  return p;
}

// ------------------------------------------------------------- journal

TEST(Journal, EncodeDecodeRoundTrip) {
  const std::string line = CampaignJournal::encode_record(
      "cant|CSR|omp|t4|k32|rows|auto", {"a", "", "1.5", "with,comma"});
  JournalRecord rec;
  ASSERT_TRUE(CampaignJournal::decode_record(line, rec));
  EXPECT_EQ(rec.key, "cant|CSR|omp|t4|k32|rows|auto");
  ASSERT_EQ(rec.cells.size(), 4u);
  EXPECT_EQ(rec.cells[0], "a");
  EXPECT_EQ(rec.cells[1], "");
  EXPECT_EQ(rec.cells[2], "1.5");
  EXPECT_EQ(rec.cells[3], "with,comma");
}

TEST(Journal, EncodeEscapesJsonMetacharacters) {
  const std::string line = CampaignJournal::encode_record(
      "k\"ey\\x", {"a\nb", "tab\there", std::string(1, '\x01')});
  JournalRecord rec;
  ASSERT_TRUE(CampaignJournal::decode_record(line, rec));
  EXPECT_EQ(rec.key, "k\"ey\\x");
  EXPECT_EQ(rec.cells[0], "a\nb");
  EXPECT_EQ(rec.cells[1], "tab\there");
  EXPECT_EQ(rec.cells[2], std::string(1, '\x01'));
}

TEST(Journal, DecodeRejectsCorruptLines) {
  JournalRecord rec;
  EXPECT_FALSE(CampaignJournal::decode_record("", rec));
  EXPECT_FALSE(CampaignJournal::decode_record("not json", rec));
  EXPECT_FALSE(CampaignJournal::decode_record("{\"v\":1}", rec));
  // Flip one payload byte: the checksum must catch it.
  std::string line = CampaignJournal::encode_record("key", {"value"});
  const auto pos = line.find("value");
  ASSERT_NE(pos, std::string::npos);
  line[pos] = 'V';
  EXPECT_FALSE(CampaignJournal::decode_record(line, rec));
  // Truncation (the torn-tail shape) must also fail to decode.
  const std::string full = CampaignJournal::encode_record("key", {"value"});
  EXPECT_FALSE(
      CampaignJournal::decode_record(full.substr(0, full.size() / 2), rec));
}

TEST(Journal, AppendPersistsAndReopens) {
  const std::string path = temp_path("spmm_journal_roundtrip.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal j = CampaignJournal::open(path, /*resume=*/false);
    j.append("cell1", {"a", "b"});
    j.append("cell2", {"c"});
    EXPECT_EQ(j.size(), 2u);
    EXPECT_TRUE(j.contains("cell1"));
  }
  CampaignJournal j = CampaignJournal::open(path, /*resume=*/true);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.torn_records(), 0u);
  const auto* cells = j.find("cell2");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ((*cells)[0], "c");
  std::remove(path.c_str());
}

TEST(Journal, OpenWithoutResumeRefusesExistingRecords) {
  const std::string path = temp_path("spmm_journal_refuse.jsonl");
  std::remove(path.c_str());
  {
    CampaignJournal j = CampaignJournal::open(path, /*resume=*/false);
    j.append("cell1", {"a"});
  }
  try {
    CampaignJournal::open(path, /*resume=*/false);
    FAIL() << "expected InputError";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_code(), names::errc::kIoJournalOpen);
  }
  // An empty (or absent) journal is fine without --resume.
  std::remove(path.c_str());
  CampaignJournal fresh = CampaignJournal::open(path, /*resume=*/false);
  EXPECT_EQ(fresh.size(), 0u);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsDroppedAndTruncated) {
  const std::string path = temp_path("spmm_journal_torn.jsonl");
  std::remove(path.c_str());
  const std::string l1 = CampaignJournal::encode_record("cell1", {"a"});
  const std::string l2 = CampaignJournal::encode_record("cell2", {"b"});
  {
    std::ofstream os(path, std::ios::binary);
    os << l1 << "\n" << l2.substr(0, l2.size() / 2);  // crash mid-append
  }
  {
    CampaignJournal j = CampaignJournal::open(path, /*resume=*/true);
    EXPECT_EQ(j.size(), 1u);
    EXPECT_EQ(j.torn_records(), 1u);
    EXPECT_TRUE(j.contains("cell1"));
    EXPECT_FALSE(j.contains("cell2"));
    // Recovery truncated the torn bytes; the re-appended record makes
    // the file a valid two-record journal again.
    j.append("cell2", {"b"});
  }
  EXPECT_EQ(read_file(path), l1 + "\n" + l2 + "\n");
  std::remove(path.c_str());
}

TEST(Journal, CorruptMiddleDropsSuffix) {
  // The recovery rule is prefix-based: everything after the first bad
  // line is dropped, even if later lines would decode — their cells'
  // plan positions can no longer be trusted.
  const std::string path = temp_path("spmm_journal_middle.jsonl");
  std::remove(path.c_str());
  {
    std::ofstream os(path, std::ios::binary);
    os << CampaignJournal::encode_record("cell1", {"a"}) << "\n"
       << "garbage line\n"
       << CampaignJournal::encode_record("cell3", {"c"}) << "\n";
  }
  CampaignJournal j = CampaignJournal::open(path, /*resume=*/true);
  EXPECT_EQ(j.size(), 1u);
  EXPECT_EQ(j.torn_records(), 2u);
  EXPECT_FALSE(j.contains("cell3"));
  std::remove(path.c_str());
}

TEST(Journal, AppendFailFaultSiteThrowsTypedError) {
  const std::string path = temp_path("spmm_journal_fault.jsonl");
  std::remove(path.c_str());
  auto faults = resilience::FaultInjector::parse("journal.append.fail@2", 1);
  resilience::FaultInjector::ScopedGlobal scope(faults);
  CampaignJournal j = CampaignJournal::open(path, /*resume=*/false);
  j.append("cell1", {"a"});
  try {
    j.append("cell2", {"b"});
    FAIL() << "expected InputError";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_code(), names::errc::kIoJournalAppend);
  }
  // The failed append wrote nothing: cell1 is the only durable record.
  EXPECT_EQ(read_file(path),
            CampaignJournal::encode_record("cell1", {"a"}) + "\n");
  std::remove(path.c_str());
}

TEST(Journal, CrashFaultSitesParse) {
  // The kill sites hard-exit the process, so only the plan grammar is
  // exercised here; the supervisor ctest (chaos_kill_resume) covers the
  // actual kill/resume cycle end to end.
  EXPECT_NO_THROW(resilience::FaultInjector::parse("journal.crash@3", 1));
  EXPECT_NO_THROW(resilience::FaultInjector::parse("journal.torn.tail@2", 1));
  EXPECT_THROW(resilience::FaultInjector::parse("journal.crash.typo@1", 1),
               Error);
}

// ------------------------------------------------------------ CSV codec

TEST(CsvCodec, CellsRoundTripThroughDecode) {
  CooD coo = testutil::small_coo();
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(), "small");
  const BenchResult r = bench->run(Variant::kSerial);
  const std::vector<std::string> cells = csv_cells(r);
  const BenchResult back = bench_result_from_csv_cells(cells);
  // Re-rendering the decoded result must reproduce the same strings —
  // the property replay depends on.
  EXPECT_EQ(csv_cells(back), cells);
  EXPECT_EQ(back.kernel_name, r.kernel_name);
  EXPECT_EQ(back.variant, r.variant);
  EXPECT_EQ(back.threads, r.threads);
  EXPECT_EQ(back.k, r.k);
  EXPECT_EQ(back.status, r.status);
  EXPECT_EQ(back.properties.nnz, r.properties.nnz);
}

TEST(CsvCodec, WriteCsvEqualsWriteCsvRows) {
  CooD coo = testutil::small_coo();
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(), "small");
  std::vector<BenchResult> results;
  results.push_back(bench->run(Variant::kSerial));
  results.push_back(bench->run(Variant::kParallel));
  std::ostringstream direct;
  write_csv(direct, results);
  std::vector<std::vector<std::string>> rows;
  for (const BenchResult& r : results) rows.push_back(csv_cells(r));
  std::ostringstream staged;
  write_csv_rows(staged, rows);
  EXPECT_EQ(direct.str(), staged.str());
}

TEST(CsvCodec, StripVolatileMakesRepeatedRunsIdentical) {
  CooD coo = testutil::random_coo(64, 64, 4.0);
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(), "rand");
  // Pay the conversion up front, as a journaled campaign does — the
  // first-run/rerun format_cached flag is otherwise (correctly)
  // different.
  bench->ensure_formatted();
  BenchResult a = bench->run(Variant::kSerial);
  BenchResult b = bench->run(Variant::kSerial);
  // Timings differ run to run...
  strip_volatile(a);
  strip_volatile(b);
  // ...but the stripped rows are a pure function of the inputs.
  EXPECT_EQ(csv_cells(a), csv_cells(b));
  EXPECT_EQ(a.avg_compute_seconds, 0.0);
  EXPECT_EQ(a.mflops, 0.0);
  // Identity and workload facts survive.
  EXPECT_EQ(a.kernel_name, "CSR");
  EXPECT_GT(a.flops, 0.0);
  EXPECT_EQ(a.properties.nnz, coo.nnz());
}

TEST(CsvCodec, NameParsersRejectUnknownValues) {
  EXPECT_EQ(status_from_name("ok"), RunStatus::kOk);
  EXPECT_EQ(status_from_name("degraded"), RunStatus::kDegraded);
  EXPECT_THROW(status_from_name("bogus"), Error);
  EXPECT_EQ(variant_from_name("serial"), Variant::kSerial);
  EXPECT_EQ(variant_from_name("omp"), Variant::kParallel);
  EXPECT_THROW(variant_from_name("bogus"), Error);
}

// ----------------------------------------------------------- campaigns

std::vector<PlanCell> two_cell_plan() {
  PlanCell serial;
  serial.variant = Variant::kSerial;
  PlanCell omp;
  omp.variant = Variant::kParallel;
  return {serial, omp};
}

TEST(Campaign, KeysTrackRetargetsAndDuplicates) {
  CooD coo = testutil::small_coo();
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(8), "small");
  PlanCell a;
  a.variant = Variant::kSerial;
  PlanCell b = a;
  b.k = 16;  // retarget persists for the cells after it
  const auto keys = campaign_keys(*bench, {a, b, a, a}, "small|CSR");
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], "small|CSR|serial|t2|k8|rows|auto");
  EXPECT_EQ(keys[1], "small|CSR|serial|t2|k16|rows|auto");
  EXPECT_EQ(keys[2], "small|CSR|serial|t2|k16|rows|auto#2");
  EXPECT_EQ(keys[3], "small|CSR|serial|t2|k16|rows|auto#3");
}

TEST(Campaign, JournalsFreshCellsAndReplaysThem) {
  const std::string path = temp_path("spmm_campaign_replay.jsonl");
  std::remove(path.c_str());
  CooD coo = testutil::small_coo();
  CampaignOptions opts;
  opts.key_prefix = "small|CSR";
  opts.encode = [](const BenchResult& r) { return csv_cells(r); };
  opts.decode = [](const std::vector<std::string>& cells) {
    return bench_result_from_csv_cells(cells);
  };
  opts.post = [](BenchResult& r) { strip_volatile(r); };

  std::vector<std::vector<std::string>> first_rows;
  {
    CampaignJournal journal = CampaignJournal::open(path, /*resume=*/false);
    opts.journal = &journal;
    auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
    bench->setup(coo, fast_params(), "small");
    const PlanRun run = run_plan_campaign(*bench, two_cell_plan(), opts);
    EXPECT_EQ(run.fresh_cells, 2u);
    EXPECT_EQ(run.replayed_cells, 0u);
    EXPECT_FALSE(run.stopped);
    ASSERT_EQ(run.results.size(), 2u);
    EXPECT_FALSE(run.replayed[0]);
    first_rows = run.rows;
  }
  {
    // Second run over the same plan: everything replays, nothing runs.
    CampaignJournal journal = CampaignJournal::open(path, /*resume=*/true);
    EXPECT_EQ(journal.size(), 2u);
    opts.journal = &journal;
    auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
    bench->setup(coo, fast_params(), "small");
    const PlanRun run = run_plan_campaign(*bench, two_cell_plan(), opts);
    EXPECT_EQ(run.fresh_cells, 0u);
    EXPECT_EQ(run.replayed_cells, 2u);
    EXPECT_TRUE(run.replayed[0] && run.replayed[1]);
    // The byte-identity contract: replayed rows are the journaled
    // strings verbatim.
    EXPECT_EQ(run.rows, first_rows);
    EXPECT_EQ(run.results[1].kernel_name, "CSR");
  }
  std::remove(path.c_str());
}

TEST(Campaign, ResumeRunsOnlyMissingCells) {
  const std::string path = temp_path("spmm_campaign_partial.jsonl");
  std::remove(path.c_str());
  CooD coo = testutil::small_coo();
  CampaignOptions opts;
  opts.key_prefix = "small|CSR";
  opts.encode = [](const BenchResult& r) { return csv_cells(r); };
  opts.decode = [](const std::vector<std::string>& cells) {
    return bench_result_from_csv_cells(cells);
  };
  opts.post = [](BenchResult& r) { strip_volatile(r); };

  std::vector<std::vector<std::string>> reference;
  {
    CampaignJournal journal = CampaignJournal::open(path, /*resume=*/false);
    opts.journal = &journal;
    auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
    bench->setup(coo, fast_params(), "small");
    reference = run_plan_campaign(*bench, two_cell_plan(), opts).rows;
  }
  // Simulate a crash after the first cell: drop the journal's tail.
  {
    CampaignJournal journal = CampaignJournal::open(path, /*resume=*/true);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << CampaignJournal::encode_record(
              "small|CSR|serial|t2|k8|rows|auto",
              *journal.find("small|CSR|serial|t2|k8|rows|auto"))
       << "\n";
  }
  {
    CampaignJournal journal = CampaignJournal::open(path, /*resume=*/true);
    EXPECT_EQ(journal.size(), 1u);
    opts.journal = &journal;
    auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
    bench->setup(coo, fast_params(), "small");
    const PlanRun run = run_plan_campaign(*bench, two_cell_plan(), opts);
    EXPECT_EQ(run.replayed_cells, 1u);
    EXPECT_EQ(run.fresh_cells, 1u);
    // Deterministic rows: the resumed campaign reproduces the
    // uninterrupted run's rows exactly.
    EXPECT_EQ(run.rows, reference);
  }
  std::remove(path.c_str());
}

TEST(Campaign, StopsAtCellBoundaryOnDeadline) {
  CooD coo = testutil::small_coo();
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(), "small");
  StopController stop;
  stop.arm_deadline(1e-9);  // already expired at the first check
  CampaignOptions opts;
  opts.stop = &stop;
  opts.encode = [](const BenchResult& r) { return csv_cells(r); };
  const PlanRun run = run_plan_campaign(*bench, two_cell_plan(), opts);
  EXPECT_TRUE(run.stopped);
  EXPECT_EQ(run.stop_reason, StopReason::kDeadline);
  EXPECT_TRUE(run.results.empty());
}

TEST(Campaign, StopsOnLatchedSignal) {
  StopController::reset_for_testing();
  StopController::arm_signals();
  std::raise(SIGTERM);  // latched by the cooperative handler
  CooD coo = testutil::small_coo();
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(coo, fast_params(), "small");
  StopController stop;
  CampaignOptions opts;
  opts.stop = &stop;
  opts.encode = [](const BenchResult& r) { return csv_cells(r); };
  const PlanRun run = run_plan_campaign(*bench, two_cell_plan(), opts);
  EXPECT_TRUE(run.stopped);
  EXPECT_EQ(run.stop_reason, StopReason::kSignal);
  EXPECT_EQ(StopController::signal_number(), SIGTERM);
  StopController::reset_for_testing();
  EXPECT_FALSE(StopController::signal_received());
}

TEST(Campaign, SignalWinsOverDeadline) {
  StopController::reset_for_testing();
  StopController::arm_signals();
  std::raise(SIGINT);
  StopController stop;
  stop.arm_deadline(1e-9);
  EXPECT_EQ(stop.should_stop(), StopReason::kSignal);
  StopController::reset_for_testing();
  EXPECT_EQ(stop.should_stop(), StopReason::kDeadline);
}

// ---------------------------------------------------------- atomic file

TEST(AtomicFile, WritesAndReplacesAtomically) {
  const std::string path = temp_path("spmm_atomic_file.txt");
  std::remove(path.c_str());
  support::write_file_atomic(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  support::write_file_atomic(path, "second\n");
  EXPECT_EQ(read_file(path), "second\n");
  // No temp droppings left beside the target.
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().string().find("spmm_atomic_file.txt.tmp"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spmm::bench
