// Tests for the COO container: canonicalization, validation, and the
// row-aligned partition the parallel kernels rely on.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;

TEST(Coo, EmptyMatrix) {
  CooD m(5, 7);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 7);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.bytes(), 0u);
}

TEST(Coo, SortsUnorderedInput) {
  AlignedVector<std::int32_t> r = {2, 0, 1, 0};
  AlignedVector<std::int32_t> c = {0, 3, 1, 1};
  AlignedVector<double> v = {1, 2, 3, 4};
  CooD m(3, 4, std::move(r), std::move(c), std::move(v));
  ASSERT_EQ(m.nnz(), 4u);
  // Canonical order: (0,1)=4 (0,3)=2 (1,1)=3 (2,0)=1.
  EXPECT_EQ(m.row(0), 0);
  EXPECT_EQ(m.col(0), 1);
  EXPECT_DOUBLE_EQ(m.value(0), 4.0);
  EXPECT_EQ(m.row(3), 2);
  EXPECT_DOUBLE_EQ(m.value(3), 1.0);
}

TEST(Coo, MergesDuplicates) {
  AlignedVector<std::int32_t> r = {1, 1, 1};
  AlignedVector<std::int32_t> c = {2, 2, 0};
  AlignedVector<double> v = {1.5, 2.5, 7.0};
  CooD m(3, 3, std::move(r), std::move(c), std::move(v));
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.value(0), 7.0);   // (1,0)
  EXPECT_DOUBLE_EQ(m.value(1), 4.0);   // (1,2) merged
}

TEST(Coo, RejectsOutOfRangeIndices) {
  AlignedVector<std::int32_t> r = {0};
  AlignedVector<std::int32_t> c = {5};
  AlignedVector<double> v = {1.0};
  EXPECT_THROW(CooD(3, 3, std::move(r), std::move(c), std::move(v)), Error);
}

TEST(Coo, RejectsMismatchedArrayLengths) {
  AlignedVector<std::int32_t> r = {0, 1};
  AlignedVector<std::int32_t> c = {0};
  AlignedVector<double> v = {1.0, 2.0};
  EXPECT_THROW(CooD(3, 3, std::move(r), std::move(c), std::move(v)), Error);
}

TEST(Coo, RejectsNegativeShape) {
  EXPECT_THROW(CooD(-1, 3), Error);
}

TEST(Coo, PartitionRejectsNonPositiveParts) {
  const CooD m = testutil::small_coo();
  EXPECT_THROW(m.row_aligned_partition(0), Error);
}

class CooPartitionTest
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(CooPartitionTest, PartitionInvariants) {
  const auto [parts, rows] = GetParam();
  const CooD m = testutil::random_coo(rows, rows, 6.0, 99);
  const auto bounds = m.row_aligned_partition(parts);

  ASSERT_EQ(bounds.size(), static_cast<usize>(parts) + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), m.nnz());
  for (int p = 0; p < parts; ++p) {
    // Monotone bounds.
    ASSERT_LE(bounds[static_cast<usize>(p)], bounds[static_cast<usize>(p) + 1]);
    // No row spans a boundary: the last row of chunk p differs from the
    // first row of chunk p+1.
    const usize split = bounds[static_cast<usize>(p) + 1];
    if (split > 0 && split < m.nnz()) {
      EXPECT_NE(m.row(split - 1), m.row(split))
          << "row split across partition boundary " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CooPartitionTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 64),
                       ::testing::Values<std::int64_t>(1, 17, 256)));

TEST(Coo, PartitionWithMorePartsThanRows) {
  const CooD m = testutil::random_coo(4, 4, 2.0, 5);
  const auto bounds = m.row_aligned_partition(32);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), m.nnz());
  for (usize i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
}

TEST(Coo, PartitionEmptyMatrix) {
  CooD m(10, 10);
  const auto bounds = m.row_aligned_partition(4);
  for (usize b : bounds) EXPECT_EQ(b, 0u);
}

TEST(Coo, EqualityComparesEverything) {
  const CooD a = testutil::small_coo();
  const CooD b = testutil::small_coo();
  EXPECT_EQ(a, b);
  const CooD c = testutil::random_coo(4, 4, 2.0, 1);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace spmm
