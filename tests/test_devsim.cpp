// Tests for the emulated device: arena accounting, capacity enforcement
// (the Study 7 out-of-memory behaviour), and launch semantics.
#include <gtest/gtest.h>

#include <atomic>

#include "devsim/device.hpp"

namespace spmm::dev {
namespace {

TEST(DeviceArena, TracksAllocationAndPeak) {
  DeviceArena arena;
  [[maybe_unused]] auto a = arena.alloc<double>(100);
  EXPECT_EQ(arena.allocated_bytes(), 800u);
  [[maybe_unused]] auto b = arena.alloc<int>(50);
  EXPECT_EQ(arena.allocated_bytes(), 1000u);
  EXPECT_EQ(arena.peak_bytes(), 1000u);
  arena.reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.peak_bytes(), 1000u);  // peak survives reset
}

TEST(DeviceArena, EnforcesCapacity) {
  DeviceArena arena(1024);
  [[maybe_unused]] auto a = arena.alloc<double>(100);  // 800 bytes
  EXPECT_THROW(arena.alloc<double>(100), DeviceOutOfMemory);
  // After reset the capacity is available again.
  arena.reset();
  EXPECT_NO_THROW(arena.alloc<double>(120));
}

TEST(DeviceArena, UnlimitedByDefault) {
  DeviceArena arena;
  EXPECT_EQ(arena.capacity_bytes(), 0u);
  EXPECT_NO_THROW(arena.alloc<double>(1 << 20));
}

TEST(DeviceArena, CopyAccounting) {
  DeviceArena arena;
  std::vector<double> host(64, 1.5);
  auto dev = arena.alloc<double>(64);
  arena.copy_to_device(dev, host.data(), 64);
  EXPECT_EQ(arena.h2d_bytes(), 64u * 8u);
  std::vector<double> back(64, 0.0);
  arena.copy_to_host(back.data(), dev, 64);
  EXPECT_EQ(arena.d2h_bytes(), 64u * 8u);
  EXPECT_EQ(back, host);
}

TEST(DeviceArena, OversizedCopyThrows) {
  DeviceArena arena;
  auto dev = arena.alloc<double>(4);
  std::vector<double> host(8, 0.0);
  EXPECT_THROW(arena.copy_to_device(dev, host.data(), 8), Error);
  EXPECT_THROW(arena.copy_to_host(host.data(), dev, 8), Error);
}

TEST(DeviceArena, MemsetZero) {
  DeviceArena arena;
  auto dev = arena.alloc<int>(16);
  std::vector<int> ones(16, 1);
  arena.copy_to_device(dev, ones.data(), 16);
  arena.memset_zero(dev);
  std::vector<int> back(16, -1);
  arena.copy_to_host(back.data(), dev, 16);
  for (int v : back) EXPECT_EQ(v, 0);
}

TEST(Launch, VisitsEveryThreadExactlyOnce) {
  DeviceArena arena;
  const Dim3 grid{4, 3, 2};
  const Dim3 block{5, 2, 1};
  std::vector<std::atomic<int>> visits(grid.count() * block.count());
  launch(arena, grid, block, [&](const ThreadCtx& t) {
    const std::uint64_t block_linear =
        t.block_idx.x +
        static_cast<std::uint64_t>(t.block_idx.y) * t.grid_dim.x +
        static_cast<std::uint64_t>(t.block_idx.z) * t.grid_dim.x *
            t.grid_dim.y;
    const std::uint64_t thread_linear =
        t.thread_idx.x +
        static_cast<std::uint64_t>(t.thread_idx.y) * t.block_dim.x +
        static_cast<std::uint64_t>(t.thread_idx.z) * t.block_dim.x *
            t.block_dim.y;
    ++visits[block_linear * block.count() + thread_linear];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_EQ(arena.launches(), 1u);
}

TEST(Launch, GlobalIndexArithmetic) {
  DeviceArena arena;
  std::vector<int> hit(12, 0);
  launch(arena, Dim3{3}, Dim3{4}, [&](const ThreadCtx& t) {
    hit[t.global_x()] = 1;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(Launch, EmptyGridRejected) {
  DeviceArena arena;
  EXPECT_THROW(launch(arena, Dim3{0}, Dim3{1}, [](const ThreadCtx&) {}),
               Error);
}

TEST(Launch, CountsLaunches) {
  DeviceArena arena;
  for (int i = 0; i < 3; ++i) {
    launch(arena, Dim3{1}, Dim3{1}, [](const ThreadCtx&) {});
  }
  EXPECT_EQ(arena.launches(), 3u);
}

}  // namespace
}  // namespace spmm::dev
