// Unit tests for the support substrate: RNG, statistics, string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

namespace spmm {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Stats, SummarizeBasics) {
  const double xs[] = {4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, 1.25);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
}

TEST(Stats, SummarizeOddMedian) {
  const double xs[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 3.0);
}

TEST(Stats, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleElement) {
  const double xs[] = {42.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(17);
  std::vector<double> xs;
  RunningStats run;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    xs.push_back(x);
    run.add(x);
  }
  const Summary batch = summarize(xs);
  EXPECT_NEAR(run.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(run.variance(), batch.variance, 1e-6);
  EXPECT_DOUBLE_EQ(run.min(), batch.min);
  EXPECT_DOUBLE_EQ(run.max(), batch.max);
  EXPECT_EQ(run.count(), batch.count);
}

TEST(StringUtil, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("%%MatrixMarket", "%%"));
  EXPECT_FALSE(starts_with("a", "ab"));
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(Timer, Monotonic) {
  Timer t;
  const double a = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b);
}

}  // namespace
}  // namespace spmm
