// Tests for the explicit SIMD kernel tier (kernels/isa.hpp,
// kernels/micro_avx2.hpp): dispatcher resolution semantics, forced-scalar
// bit-identity (including the cache-blocked k-tile path), the
// pinned-tolerance band for AVX2/FMA against the serial accumulation
// order, and the min-work serial fallback in the benchmark layer.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "kernels/dense_ref.hpp"
#include "kernels/isa.hpp"
#include "kernels/spmm_csr.hpp"
#include "kernels/spmm_ell.hpp"
#include "kernels/spmm_sellc.hpp"
#include "support/cli.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
using bench::BenchResult;
using bench::print_result;
using bench::run_benchmark;
using bench::RunStatus;

// Correctness band for the FMA tier: fused multiply-adds round once
// where the scalar tier rounds twice, and the 4-wide j-lanes of the
// transpose dot reassociate the nnz sum. With O(1) operands and the
// small row counts here the drift stays orders of magnitude under this.
constexpr double kFmaTol = 1e-12;

// The widths the microkernels must survive: sub-vector (1, 3), exactly
// one 8-lane body (8), the benchmark default (32), and a ragged tail
// that exercises the 8-wide, 4-wide, and scalar remainders at once (37).
const std::vector<int> kWidths = {1, 3, 8, 32, 37};

/// Dense operand pair (B and its transpose) for a given width.
struct Operands {
  Dense<double> b, bt;
  Operands(std::int64_t cols, int k)
      : b(static_cast<usize>(cols), static_cast<usize>(k)),
        bt(0, 0) {
    Rng rng(7);
    b.fill_random(rng);
    bt = b.transposed();
  }
};

TEST(IsaResolve, ScalarIsAlwaysScalar) {
  EXPECT_EQ(isa::resolve(Isa::kScalar), Isa::kScalar);
}

TEST(IsaResolve, NeverReturnsAuto) {
  EXPECT_NE(isa::resolve(Isa::kAuto), Isa::kAuto);
  EXPECT_NE(isa::resolve(Isa::kAvx2), Isa::kAuto);
}

TEST(IsaResolve, AutoMatchesExplicitAvx2Request) {
  // kAuto means "best available", which is exactly what a forced kAvx2
  // degrades to when the tier or the CPU is missing.
  EXPECT_EQ(isa::resolve(Isa::kAuto), isa::resolve(Isa::kAvx2));
}

TEST(IsaResolve, Avx2OnlyWhenCompiledAndSupported) {
  const bool runnable = isa::compiled_avx2() && isa::cpu_has_avx2_fma();
  EXPECT_EQ(isa::resolve(Isa::kAvx2) == Isa::kAvx2, runnable);
}

TEST(IsaResolve, NameParsingRoundTrips) {
  EXPECT_EQ(isa_from_name("auto"), Isa::kAuto);
  EXPECT_EQ(isa_from_name("scalar"), Isa::kScalar);
  EXPECT_EQ(isa_from_name("avx2"), Isa::kAvx2);
  EXPECT_THROW(isa_from_name("sse9"), Error);
  EXPECT_EQ(isa_name(Isa::kAuto), std::string("auto"));
  EXPECT_EQ(isa_name(Isa::kScalar), std::string("scalar"));
  EXPECT_EQ(isa_name(Isa::kAvx2), std::string("avx2"));
}

// ---------------------------------------------------------------------
// Forced-scalar bit-identity: Isa::kScalar must reproduce the serial
// accumulation order exactly, element-for-element — including the
// cache-blocked (rows × k) tiling, which walks the nnz of each row
// in-order within every k-tile and assigns each C element to exactly
// one tile.

/// The canonical accumulation order: rows outer, nnz in-order, columns
/// inner. Every scalar-tier kernel is bit-identical to this.
Dense<double> naive_csr(const Csr<double, std::int32_t>& a,
                        const Dense<double>& b) {
  Dense<double> c(static_cast<usize>(a.rows()), b.cols());
  c.fill(0.0);
  const auto& rp = a.row_ptr();
  for (std::int32_t r = 0; r < a.rows(); ++r) {
    double* crow = c.data() + static_cast<usize>(r) * b.cols();
    for (std::int32_t i = rp[static_cast<usize>(r)];
         i < rp[static_cast<usize>(r) + 1]; ++i) {
      const double v = a.values()[static_cast<usize>(i)];
      const double* brow =
          b.data() +
          static_cast<usize>(a.col_idx()[static_cast<usize>(i)]) * b.cols();
      for (usize j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

void expect_bitwise_equal(const Dense<double>& a, const Dense<double>& b,
                          const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (usize i = 0; i < a.rows() * a.cols(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
  }
}

TEST(IsaScalarBitIdentity, CsrSerialMatchesNaiveOrder) {
  const CooD m = testutil::random_coo(90, 90, 6.0, 11);
  const auto csr = to_csr(m);
  // k=32 stays on the untiled fast path; k=200 > micro::kColBlock forces
  // the 2D k-tile path, whose accumulation order must be unchanged.
  for (int k : {32, 200}) {
    const Operands ops(m.cols(), k);
    const Dense<double> expected = naive_csr(csr, ops.b);
    Dense<double> c(static_cast<usize>(m.rows()), static_cast<usize>(k));
    spmm_csr_serial(csr, ops.b, c, Isa::kScalar);
    expect_bitwise_equal(expected, c, "csr serial scalar");
  }
}

TEST(IsaScalarBitIdentity, CsrParallelMatchesSerial) {
  const CooD m = testutil::random_coo(90, 90, 6.0, 12);
  const auto csr = to_csr(m);
  for (int k : {32, 200}) {
    const Operands ops(m.cols(), k);
    Dense<double> serial(static_cast<usize>(m.rows()), static_cast<usize>(k));
    spmm_csr_serial(csr, ops.b, serial, Isa::kScalar);
    for (Sched s : {Sched::kRows, Sched::kNnz}) {
      for (int t : {1, 4}) {
        Dense<double> c(static_cast<usize>(m.rows()), static_cast<usize>(k));
        c.fill(-1.0);
        spmm_csr_parallel(csr, ops.b, c, t, s, nullptr, Isa::kScalar);
        expect_bitwise_equal(serial, c, "csr parallel scalar");
      }
    }
  }
}

TEST(IsaScalarBitIdentity, EllAndSellcDefaultIsScalar) {
  // The default Isa argument is kScalar, so existing callers (and the
  // bit-identity guarantees of the pre-tier kernels) are unchanged.
  const CooD m = testutil::random_coo(80, 80, 5.0, 13);
  const Operands ops(m.cols(), 37);
  const auto ell = to_ell(m);
  Dense<double> c1(static_cast<usize>(m.rows()), 37);
  Dense<double> c2(static_cast<usize>(m.rows()), 37);
  spmm_ell_serial(ell, ops.b, c1);
  spmm_ell_serial(ell, ops.b, c2, Isa::kScalar);
  expect_bitwise_equal(c1, c2, "ell default == scalar");
  const auto sell = to_sellc(m, 8, 32);
  spmm_sellc_serial(sell, ops.b, c1);
  spmm_sellc_serial(sell, ops.b, c2, Isa::kScalar);
  expect_bitwise_equal(c1, c2, "sellc default == scalar");
}

// ---------------------------------------------------------------------
// AVX2 tier vs serial accumulation order: pinned tolerance, every
// format in the tier, every width class, both operand layouts, serial
// and parallel under both schedules. On hosts without AVX2+FMA the
// forced-avx2 request resolves to scalar and the comparisons hold at
// tolerance zero.

class IsaAvx2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(120, 120, 7.0, 4242);
    expected_k_.clear();
    for (int k : kWidths) {
      Operands ops(a_.cols(), k);
      expected_k_.push_back(spmm_reference(a_, ops.b));
    }
  }

  void expect_close(const Dense<double>& expected, const Dense<double>& c,
                    const char* what, int k) {
    EXPECT_LE(max_abs_diff(expected, c), kFmaTol) << what << " k=" << k;
  }

  CooD a_;
  std::vector<Dense<double>> expected_k_;
};

TEST_F(IsaAvx2Test, CsrAllWidthsAndLayouts) {
  const auto csr = to_csr(a_);
  for (usize wi = 0; wi < kWidths.size(); ++wi) {
    const int k = kWidths[wi];
    const Operands ops(a_.cols(), k);
    Dense<double> c(static_cast<usize>(a_.rows()), static_cast<usize>(k));
    spmm_csr_serial(csr, ops.b, c, Isa::kAvx2);
    expect_close(expected_k_[wi], c, "csr serial avx2", k);
    c.fill(-1.0);
    spmm_csr_serial_transpose(csr, ops.bt, c, Isa::kAvx2);
    expect_close(expected_k_[wi], c, "csr serial-T avx2", k);
    for (Sched s : {Sched::kRows, Sched::kNnz}) {
      for (int t : {1, 4}) {
        c.fill(-1.0);
        spmm_csr_parallel(csr, ops.b, c, t, s, nullptr, Isa::kAvx2);
        expect_close(expected_k_[wi], c, "csr omp avx2", k);
        c.fill(-1.0);
        spmm_csr_parallel_transpose(csr, ops.bt, c, t, s, nullptr,
                                    Isa::kAvx2);
        expect_close(expected_k_[wi], c, "csr omp-T avx2", k);
      }
    }
  }
}

TEST_F(IsaAvx2Test, EllAllWidthsAndLayouts) {
  const auto ell = to_ell(a_);
  for (usize wi = 0; wi < kWidths.size(); ++wi) {
    const int k = kWidths[wi];
    const Operands ops(a_.cols(), k);
    Dense<double> c(static_cast<usize>(a_.rows()), static_cast<usize>(k));
    spmm_ell_serial(ell, ops.b, c, Isa::kAvx2);
    expect_close(expected_k_[wi], c, "ell serial avx2", k);
    c.fill(-1.0);
    spmm_ell_serial_transpose(ell, ops.bt, c, Isa::kAvx2);
    expect_close(expected_k_[wi], c, "ell serial-T avx2", k);
    for (int t : {1, 4}) {
      c.fill(-1.0);
      spmm_ell_parallel(ell, ops.b, c, t, Sched::kRows, Isa::kAvx2);
      expect_close(expected_k_[wi], c, "ell omp avx2", k);
      c.fill(-1.0);
      spmm_ell_parallel_transpose(ell, ops.bt, c, t, Sched::kRows,
                                  Isa::kAvx2);
      expect_close(expected_k_[wi], c, "ell omp-T avx2", k);
    }
  }
}

TEST_F(IsaAvx2Test, SellcAllWidths) {
  const auto sell = to_sellc(a_, 8, 32);
  for (usize wi = 0; wi < kWidths.size(); ++wi) {
    const int k = kWidths[wi];
    const Operands ops(a_.cols(), k);
    Dense<double> c(static_cast<usize>(a_.rows()), static_cast<usize>(k));
    spmm_sellc_serial(sell, ops.b, c, Isa::kAvx2);
    expect_close(expected_k_[wi], c, "sellc serial avx2", k);
    for (Sched s : {Sched::kRows, Sched::kNnz}) {
      for (int t : {1, 4}) {
        c.fill(-1.0);
        spmm_sellc_parallel(sell, ops.b, c, t, s, nullptr, Isa::kAvx2);
        expect_close(expected_k_[wi], c, "sellc omp avx2", k);
      }
    }
  }
}

TEST_F(IsaAvx2Test, FloatTier) {
  // The float microkernels (16/8-lane axpy, SSE dot) share the dispatch.
  AlignedVector<float> fvals;
  fvals.reserve(a_.values().size());
  for (double v : a_.values()) fvals.push_back(static_cast<float>(v));
  const Coo<float, std::int32_t> af(
      static_cast<std::int32_t>(a_.rows()),
      static_cast<std::int32_t>(a_.cols()),
      AlignedVector<std::int32_t>(a_.row_idx()),
      AlignedVector<std::int32_t>(a_.col_idx()), std::move(fvals));
  const auto csr = to_csr(af);
  Rng rng(7);
  Dense<float> b(static_cast<usize>(a_.cols()), 37);
  b.fill_random(rng);
  Dense<float> scalar(static_cast<usize>(a_.rows()), 37);
  Dense<float> vec(static_cast<usize>(a_.rows()), 37);
  spmm_csr_serial(csr, b, scalar, Isa::kScalar);
  spmm_csr_serial(csr, b, vec, Isa::kAvx2);
  EXPECT_LE(max_abs_diff(scalar, vec), 1e-4);
}

// ---------------------------------------------------------------------
// Benchmark-layer dispatch: the --isa axis must reach the kernels and
// the result must echo both the requested and the executed tier.

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 2;
  p.warmup = 1;
  p.threads = 3;
  p.block_size = 4;
  p.k = k;
  return p;
}

TEST(IsaDispatch, ForcedScalarIsEchoed) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  BenchParams p = fast_params();
  p.isa = Isa::kScalar;
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m60");
  EXPECT_EQ(r.isa, Isa::kScalar);
  EXPECT_EQ(r.executed_isa, Isa::kScalar);
  EXPECT_TRUE(r.verified);
}

TEST(IsaDispatch, AutoResolvesToHostBestTier) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, fast_params(), "m60");
  EXPECT_EQ(r.isa, Isa::kAuto);
  EXPECT_EQ(r.executed_isa, isa::resolve(Isa::kAuto));
  EXPECT_TRUE(r.verified);
}

TEST(IsaDispatch, PrintTagsOnlyNonDefaultRequests) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  BenchParams p = fast_params();
  std::ostringstream default_run;
  print_result(default_run, run_benchmark<double, std::int32_t>(
                                Format::kCsr, Variant::kSerial, m, p, "m60"));
  EXPECT_EQ(default_run.str().find("isa="), std::string::npos);
  p.isa = Isa::kScalar;
  std::ostringstream forced;
  print_result(forced, run_benchmark<double, std::int32_t>(
                           Format::kCsr, Variant::kSerial, m, p, "m60"));
  EXPECT_NE(forced.str().find("isa=scalar"), std::string::npos);
}

// ---------------------------------------------------------------------
// Min-work serial fallback: a parallel request whose nnz·k falls under
// BenchParams::min_parallel_work runs the serial kernel (fork/join and
// partition overhead dominate tiny cells; see BENCH_kernels.json's
// dw4096 rows, which were 2-3.6x slower under omp than serial).

TEST(MinWorkGuard, TinyParallelCellFallsBackToSerial) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);  // ~300 nnz * k=8
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kParallel, m, fast_params(), "m60");
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_EQ(r.variant, Variant::kParallel);
  EXPECT_EQ(r.executed_variant, Variant::kSerial);
  EXPECT_EQ(r.threads, 1);  // echoes what actually ran
  EXPECT_TRUE(r.verified);
  std::ostringstream os;
  print_result(os, r);
  EXPECT_NE(os.str().find("[serial-fallback]"), std::string::npos);
}

TEST(MinWorkGuard, TransposeRequestFallsBackToSerialTranspose) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kParallelTranspose, m, fast_params(), "m60");
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_EQ(r.executed_variant, Variant::kSerialTranspose);
  EXPECT_TRUE(r.verified);
}

TEST(MinWorkGuard, ZeroThresholdDisablesTheGuard) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  BenchParams p = fast_params();
  p.min_parallel_work = 0;
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kParallel, m, p, "m60");
  EXPECT_EQ(r.executed_variant, Variant::kParallel);
  EXPECT_EQ(r.threads, 3);
  std::ostringstream os;
  print_result(os, r);
  EXPECT_EQ(os.str().find("[serial-fallback]"), std::string::npos);
}

TEST(MinWorkGuard, LargeWorkStaysParallel) {
  // 400 rows * ~40 nnz/row * k=32 comfortably clears the 2^18 default.
  const CooD m = testutil::random_coo(400, 400, 40.0, 2);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kParallel, m, fast_params(32), "m400");
  EXPECT_EQ(r.executed_variant, Variant::kParallel);
  EXPECT_EQ(r.threads, 3);
}

TEST(MinWorkGuard, SerialRequestsAreNeverRewritten) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, fast_params(), "m60");
  EXPECT_EQ(r.executed_variant, Variant::kSerial);
}

}  // namespace
}  // namespace spmm
