// Tests for the CLI parser and the shared benchmark parameter block
// (paper §4.3).
#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/error.hpp"

namespace spmm {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p;
  p.add_int("count", 'c', 7, "a count");
  auto args = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(p.get_int("count"), 7);
}

TEST(ArgParser, LongOptionForms) {
  ArgParser p;
  p.add_int("count", 'c', 0, "a count");
  p.add_string("name", 0, "", "a name");
  auto args = argv_of({"--count", "3", "--name=alpha"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(p.get_int("count"), 3);
  EXPECT_EQ(p.get_string("name"), "alpha");
}

TEST(ArgParser, ShortOptionForms) {
  ArgParser p;
  p.add_int("k", 'k', 0, "width");
  auto a1 = argv_of({"-k", "128"});
  ASSERT_TRUE(p.parse(static_cast<int>(a1.size()), a1.data()));
  EXPECT_EQ(p.get_int("k"), 128);
  auto a2 = argv_of({"-k256"});
  ASSERT_TRUE(p.parse(static_cast<int>(a2.size()), a2.data()));
  EXPECT_EQ(p.get_int("k"), 256);
}

TEST(ArgParser, Flags) {
  ArgParser p;
  p.add_flag("debug", 'd', "debug mode");
  auto args = argv_of({"-d"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(p.get_flag("debug"));
}

TEST(ArgParser, IntList) {
  ArgParser p;
  p.add_int_list("threads", 0, {1}, "thread counts");
  auto args = argv_of({"--threads", "2,4, 8"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  const auto& list = p.get_int_list("threads");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 2);
  EXPECT_EQ(list[2], 8);
}

TEST(ArgParser, PositionalsCollected) {
  ArgParser p;
  p.add_int("k", 'k', 0, "width");
  auto args = argv_of({"file.mtx", "-k", "8", "other"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "file.mtx");
  EXPECT_EQ(p.positional()[1], "other");
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser p;
  auto args = argv_of({"--nope"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, BadIntegerThrows) {
  ArgParser p;
  p.add_int("k", 'k', 0, "width");
  auto args = argv_of({"--k", "12x"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p;
  p.add_int("k", 'k', 0, "width");
  auto args = argv_of({"--k"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser p;
  p.add_flag("debug", 0, "debug");
  auto args = argv_of({"--debug=yes"});
  EXPECT_THROW(p.parse(static_cast<int>(args.size()), args.data()), Error);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser p("test program");
  auto args = argv_of({"--help"});
  testing::internal::CaptureStdout();
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_NE(out.find("test program"), std::string::npos);
}

TEST(ArgParser, DoubleOption) {
  ArgParser p;
  p.add_double("scale", 0, 1.0, "scale");
  auto args = argv_of({"--scale", "0.25"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 0.25);
}

TEST(BenchParams, DefaultsMatchPaper) {
  ArgParser p;
  BenchParams::register_options(p);
  auto args = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  const BenchParams bp = BenchParams::from_parser(p);
  // Paper defaults: k=128, 32 threads, BCSR block 4.
  EXPECT_EQ(bp.k, 128);
  EXPECT_EQ(bp.threads, 32);
  EXPECT_EQ(bp.block_size, 4);
  EXPECT_TRUE(bp.verify);
}

TEST(BenchParams, ParsesFullCommandLine) {
  ArgParser p;
  BenchParams::register_options(p);
  auto args = argv_of({"-n", "5", "-t", "8", "-b", "2", "-k", "64",
                       "--thread-list", "2,4,8", "--no-verify", "--debug"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  const BenchParams bp = BenchParams::from_parser(p);
  EXPECT_EQ(bp.iterations, 5);
  EXPECT_EQ(bp.threads, 8);
  EXPECT_EQ(bp.block_size, 2);
  EXPECT_EQ(bp.k, 64);
  ASSERT_EQ(bp.thread_list.size(), 3u);
  EXPECT_EQ(bp.thread_list[2], 8);
  EXPECT_FALSE(bp.verify);
  EXPECT_TRUE(bp.debug);
}

TEST(BenchParams, RejectsInvalidValues) {
  for (const char* bad :
       {"--iterations=0", "--warmup=-1", "--threads=-1", "--block-size=0",
        "--k=0", "--thread-list=2,0"}) {
    ArgParser p;
    BenchParams::register_options(p);
    auto args = argv_of({bad});
    ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
    EXPECT_THROW(BenchParams::from_parser(p), Error) << bad;
  }
}

}  // namespace
}  // namespace spmm
