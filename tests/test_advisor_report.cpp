// Tests for the format advisor (§6 conclusions as heuristics) and the
// report writers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/advisor.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "gen/suite.hpp"
#include "test_util.hpp"

namespace spmm::bench {
namespace {

MatrixProperties props_of(const testutil::CooD& m, const char* name) {
  return compute_properties(m, name);
}

TEST(Advisor, SerialAlwaysCsr) {
  for (auto placement : {gen::Placement::kBanded, gen::Placement::kScattered,
                         gen::Placement::kClustered}) {
    const auto p = props_of(
        testutil::random_coo(200, 200, 6.0, 1, placement), "m");
    const Advice a = advise_format(p, Environment::kSerial);
    EXPECT_EQ(a.format, Format::kCsr);
    EXPECT_FALSE(a.rationale.empty());
  }
}

TEST(Advisor, UniformRowsGetEllInParallel) {
  // af23560-like: ratio ~1, tiny stddev.
  const auto m = gen::generate<double, std::int32_t>(
      gen::suite_spec("af23560", 0.05));
  const Advice a =
      advise_format(props_of(m, "af"), Environment::kCpuParallel);
  EXPECT_EQ(a.format, Format::kEll);
}

TEST(Advisor, HighColumnRatioAvoidsEll) {
  const auto m = gen::generate<double, std::int32_t>(
      gen::suite_spec("torso1", 0.02));
  const auto p = props_of(m, "torso1");
  for (auto env : {Environment::kCpuParallel, Environment::kGpu}) {
    const Advice a = advise_format(p, env, /*bcsr_fill_b4=*/0.1);
    EXPECT_NE(a.format, Format::kEll) << environment_name(env);
  }
}

TEST(Advisor, ClusteredDenseBlocksGetBcsr) {
  const auto m = gen::generate<double, std::int32_t>(
      gen::suite_spec("crankseg_2", 0.02));
  const Advice a = advise_format(props_of(m, "crankseg_2"),
                                 Environment::kCpuParallel,
                                 /*bcsr_fill_b4=*/0.8);
  EXPECT_EQ(a.format, Format::kBcsr);
  EXPECT_EQ(a.block_size, 4);
}

TEST(Advisor, IrregularSparseBlocksFallBackToCsr) {
  const auto m = gen::generate<double, std::int32_t>(
      gen::suite_spec("torso1", 0.02));
  const Advice a = advise_format(props_of(m, "torso1"),
                                 Environment::kCpuParallel,
                                 /*bcsr_fill_b4=*/0.1);
  EXPECT_EQ(a.format, Format::kCsr);
}

TEST(Advisor, EstimatesFillWhenUnknown) {
  // Without a provided fill, the advisor estimates it from the
  // normalized row gap: tight gaps ⇒ dense blocks ⇒ BCSR.
  MatrixProperties p;
  p.rows = p.cols = 1000;
  p.nnz = 20000;
  p.avg_row_nnz = 20.0;
  p.max_row_nnz = 100;
  p.column_ratio = 5.0;  // ELL branch off
  p.row_nnz_stddev = 20.0;
  p.normalized_row_gap = 0.002;  // clustered: consecutive columns
  EXPECT_EQ(advise_format(p, Environment::kCpuParallel).format,
            Format::kBcsr);
  p.normalized_row_gap = 0.2;  // scattered
  EXPECT_EQ(advise_format(p, Environment::kCpuParallel).format,
            Format::kCsr);
}

TEST(Advisor, DenseBlocksBeatSafeEll) {
  // nd24k-like: ratio is ELL-safe (2.4) but the blocks are very dense —
  // BCSR must win the recommendation.
  MatrixProperties p;
  p.rows = p.cols = 72000;
  p.nnz = 14393817;
  p.avg_row_nnz = 199.9;
  p.max_row_nnz = 481;
  p.column_ratio = 2.4;
  p.row_nnz_stddev = 81.6;
  p.ell_padding_ratio = 2.4;
  const Advice a = advise_format(p, Environment::kCpuParallel,
                                 /*bcsr_fill_b4=*/0.69);
  EXPECT_EQ(a.format, Format::kBcsr);
}

TEST(Advisor, PaddingRatioVetoesEll) {
  // dw4096-like: ratio 1.6 looks ELL-safe but rows·max/nnz = 1.57 means
  // 57% wasted work — CSR is the right call.
  MatrixProperties p;
  p.rows = p.cols = 8192;
  p.nnz = 41746;
  p.avg_row_nnz = 5.1;
  p.max_row_nnz = 8;
  p.column_ratio = 1.6;
  p.row_nnz_stddev = 0.1;
  p.ell_padding_ratio = 1.57;
  const Advice a = advise_format(p, Environment::kCpuParallel,
                                 /*bcsr_fill_b4=*/0.12);
  EXPECT_EQ(a.format, Format::kCsr);
}

TEST(Report, PrintResultLine) {
  const auto m = testutil::random_coo(40, 40, 4.0, 3);
  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 8;
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kEll, Variant::kSerial, m, params, "mat40");
  std::ostringstream os;
  print_result(os, r);
  const std::string line = os.str();
  EXPECT_NE(line.find("mat40"), std::string::npos);
  EXPECT_NE(line.find("ELL/serial"), std::string::npos);
  EXPECT_NE(line.find("MFLOPs"), std::string::npos);
  EXPECT_NE(line.find("[verified]"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows) {
  const auto m = testutil::random_coo(40, 40, 4.0, 3);
  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 8;
  std::vector<BenchResult> rs;
  rs.push_back(run_benchmark<double, std::int32_t>(
      Format::kCoo, Variant::kSerial, m, params, "m,comma"));
  std::ostringstream os;
  write_csv(os, rs);
  const std::string text = os.str();
  // Header + one data row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("matrix,kernel,variant"), std::string::npos);
  EXPECT_NE(text.find("\"m,comma\""), std::string::npos);
  EXPECT_NE(text.find("yes"), std::string::npos);
}

}  // namespace
}  // namespace spmm::bench
