// Tests for the HYB (hybrid ELL+COO) extension format: the split
// invariants, the width heuristic, round trips, and kernel correctness.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_hyb.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

CooD skewed_matrix() {
  // Mostly 4-entry rows with a few heavy ones — HYB's home turf.
  gen::MatrixSpec spec;
  spec.name = "skewed";
  spec.rows = spec.cols = 400;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.mean = 4;
  spec.row_dist.max_nnz = 200;
  spec.row_dist.heavy_fraction = 0.03;
  spec.row_dist.heavy_min = 100;
  spec.row_dist.heavy_max = 200;
  spec.placement.kind = gen::Placement::kScattered;
  return gen::generate<double, std::int32_t>(spec);
}

TEST(Hyb, SplitInvariants) {
  const CooD m = skewed_matrix();
  const auto hyb = to_hyb(m, 4);
  EXPECT_EQ(hyb.width(), 4);
  EXPECT_EQ(hyb.nnz(), m.nnz());
  // Every row contributes at most `width` entries to the ELL region.
  EXPECT_LE(hyb.ell().nnz(), static_cast<usize>(4 * m.rows()));
  // Tail holds exactly the overflow.
  EXPECT_EQ(hyb.tail().nnz(), m.nnz() - hyb.ell().nnz());
  EXPECT_GT(hyb.tail().nnz(), 0u);  // heavy rows must spill
}

TEST(Hyb, RoundTripAcrossWidths) {
  const CooD m = skewed_matrix();
  for (std::int32_t w : {0, 1, 3, 4, 16, 500}) {
    EXPECT_EQ(to_coo(to_hyb(m, w)), m) << "width " << w;
  }
  EXPECT_EQ(to_coo(to_hyb(m)), m) << "auto width";
}

TEST(Hyb, WidthZeroIsPureCoo) {
  const CooD m = skewed_matrix();
  const auto hyb = to_hyb(m, 0);
  EXPECT_EQ(hyb.ell().nnz(), 0u);
  EXPECT_EQ(hyb.tail().nnz(), m.nnz());
  EXPECT_DOUBLE_EQ(hyb.tail_fraction(), 1.0);
}

TEST(Hyb, HugeWidthIsPureEll) {
  const CooD m = skewed_matrix();
  const auto hyb = to_hyb(m, 10000);
  EXPECT_EQ(hyb.tail().nnz(), 0u);
  EXPECT_EQ(hyb.ell().nnz(), m.nnz());
}

TEST(Hyb, AutoWidthMinimizesWeightedCost) {
  const CooD m = skewed_matrix();
  const auto w = hyb_auto_width(m);
  const auto cost_at = [&](std::int32_t width) {
    const auto h = to_hyb(m, width);
    return static_cast<std::int64_t>(h.ell().padded_nnz()) +
           kHybTailWeight * static_cast<std::int64_t>(h.tail().nnz());
  };
  const auto chosen = cost_at(w);
  // The heuristic's exact objective: no other width costs less.
  for (std::int32_t other : {0, 1, 2, 3, 4, 5, 8, 16, 64, 200}) {
    EXPECT_LE(chosen, cost_at(other))
        << "width " << other << " beats auto " << w;
  }
}

TEST(Hyb, BeatsEllPaddingOnSkewedMatrix) {
  const CooD m = skewed_matrix();
  const auto hyb = to_hyb(m);
  const auto ell = to_ell(m);
  // The whole point of the format: orders of magnitude less padding.
  EXPECT_LT(hyb.padded_nnz(), ell.padded_nnz() / 5);
  EXPECT_LT(hyb.padding_ratio(), 2.0);
}

TEST(Hyb, EmptyMatrix) {
  const auto hyb = to_hyb(CooD(5, 5));
  EXPECT_EQ(hyb.nnz(), 0u);
  EXPECT_EQ(hyb.width(), 0);
  EXPECT_DOUBLE_EQ(hyb.padding_ratio(), 1.0);
}

class HybKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(HybKernelTest, AllVariantsMatchReference) {
  const CooD m = skewed_matrix();
  const auto hyb = to_hyb(m, GetParam());
  Rng rng(5);
  Dense<double> b(static_cast<usize>(m.cols()), 16);
  b.fill_random(rng);
  const auto expected = spmm_reference(m, b);
  Dense<double> c(static_cast<usize>(m.rows()), 16);

  spmm_hyb_serial(hyb, b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "serial";
  c.fill(-1.0);
  spmm_hyb_parallel(hyb, b, c, 4);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "parallel";
  c.fill(-1.0);
  dev::DeviceArena arena;
  spmm_hyb_device(arena, hyb, b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "device";
}

INSTANTIATE_TEST_SUITE_P(Widths, HybKernelTest,
                         ::testing::Values(-1, 0, 2, 4, 64),
                         [](const auto& info) {
                           return info.param < 0
                                      ? std::string("auto")
                                      : "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spmm
