// The structural analyzer's own test suite.
//
// Three layers: the rule registry and report plumbing, clean structures
// passing every rule, and — the important part — seeded corruptions:
// each format is deliberately broken the way a buggy formatter would
// break it (swapped row_ptr entries, misaligned BCSR blocks, truncated
// ELL padding, off-by-one CSR5 tile metadata) and the analyzer must
// report the exact expected rule id.
#include <gtest/gtest.h>

#include <cmath>

#include "audit/audit.hpp"
#include "core/format_benchmarks.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
using I32 = std::int32_t;

// ----------------------------------------------------- registry/report --

TEST(AuditRegistry, ContainsTheCoreRuleIds) {
  for (const char* id :
       {"csr.row_ptr.monotone", "ell.pad.sentinel", "bcsr.block.geometry",
        "csr5.tile.meta", "convert.roundtrip.identity",
        "kernel.verify.diff"}) {
    const audit::RuleInfo* info = audit::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_EQ(info->id, id);
    EXPECT_FALSE(info->description.empty());
  }
  EXPECT_EQ(audit::find_rule("no.such.rule"), nullptr);
}

TEST(AuditRegistry, IsSortedById) {
  const auto& reg = audit::rule_registry();
  ASSERT_FALSE(reg.empty());
  for (usize i = 1; i < reg.size(); ++i) {
    EXPECT_LT(reg[i - 1].id, reg[i].id);
  }
}

TEST(AuditReport, CountsSeveritiesAndCapsStoredRecords) {
  audit::AuditReport report;
  EXPECT_TRUE(report.ok());
  const usize n = audit::AuditReport::kMaxPerRule + 4;
  for (usize i = 0; i < n; ++i) {
    report.add("coo.index.range", "COO", "entry " + std::to_string(i),
               "out of range");
  }
  report.add("bcsr.block.occupancy", "BCSR", "block 0", "empty block");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.error_count(), n);
  EXPECT_EQ(report.warning_count(), 1u);
  EXPECT_EQ(report.count("coo.index.range"), n);
  EXPECT_EQ(report.suppressed_count(), 4u);
  EXPECT_EQ(report.diagnostics().size(), audit::AuditReport::kMaxPerRule + 1);
  ASSERT_EQ(report.fired_rules().size(), 2u);
  EXPECT_EQ(report.fired_rules()[0], "coo.index.range");
  EXPECT_TRUE(report.has("bcsr.block.occupancy"));

  report.clear();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.diagnostics().size(), 0u);
  EXPECT_FALSE(report.has("coo.index.range"));
}

// ------------------------------------------------------- clean passes --

TEST(AuditClean, EveryConversionPathPassesOnRandomMatrices) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    const CooD a = testutil::random_coo(60, 45, 4.0, seed);
    audit::AuditReport report;
    audit::audit_conversions(a, report, "random");
    EXPECT_TRUE(report.ok()) << "seed " << seed;
    EXPECT_EQ(report.warning_count(), 0u) << "seed " << seed;
  }
}

TEST(AuditClean, AdversarialEdgeMatricesPass) {
  std::vector<std::pair<const char*, CooD>> edges;
  edges.emplace_back("empty-5x7", CooD(5, 7));  // every row empty
  edges.emplace_back("0xN", CooD(0, 6));
  edges.emplace_back("Nx0", CooD(6, 0));
  {
    // One fully dense row amid empty ones.
    AlignedVector<I32> r(8, 2), c(8);
    AlignedVector<double> v(8);
    for (I32 j = 0; j < 8; ++j) {
      c[static_cast<usize>(j)] = j;
      v[static_cast<usize>(j)] = j + 1.0;
    }
    edges.emplace_back("dense-row",
                       CooD(5, 8, std::move(r), std::move(c), std::move(v)));
  }
  {
    // Single-column matrix.
    AlignedVector<I32> r = {0, 2, 3}, c = {0, 0, 0};
    AlignedVector<double> v = {1.0, 2.0, 3.0};
    edges.emplace_back("single-col",
                       CooD(4, 1, std::move(r), std::move(c), std::move(v)));
  }
  for (auto& [name, matrix] : edges) {
    audit::AuditReport report;
    audit::audit_conversions(matrix, report, name);
    EXPECT_TRUE(report.ok()) << name;
  }
}

// ------------------------------------------------- seeded corruptions --

TEST(AuditCorruption, UnsortedCooTriplets) {
  AlignedVector<I32> r = {2, 0, 1}, c = {1, 0, 2};
  AlignedVector<double> v = {1, 2, 3};
  audit::AuditReport report;
  audit::audit_coo_raw<double, I32>(3, 3, r, c, v, report);
  EXPECT_TRUE(report.has("coo.order.canonical"));
}

TEST(AuditCorruption, CooIndexOutOfRange) {
  AlignedVector<I32> r = {0, 5}, c = {0, 1};
  AlignedVector<double> v = {1, 2};
  audit::AuditReport report;
  audit::audit_coo_raw<double, I32>(3, 3, r, c, v, report);
  EXPECT_TRUE(report.has("coo.index.range"));
}

TEST(AuditCorruption, SwappedCsrRowPtrEntries) {
  const auto csr = to_csr(testutil::small_coo());
  AlignedVector<I32> row_ptr(csr.row_ptr());
  std::swap(row_ptr[2], row_ptr[3]);  // [0,2,2,3,6] -> [0,2,3,2,6]
  audit::AuditReport report;
  audit::audit_csr_raw(csr.rows(), csr.cols(), row_ptr, csr.col_idx(),
                       csr.values(), report);
  EXPECT_TRUE(report.has("csr.row_ptr.monotone"));
  const audit::Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.rule, "csr.row_ptr.monotone");
  EXPECT_EQ(d.severity, audit::Severity::kError);
  EXPECT_FALSE(d.location.empty());
}

TEST(AuditCorruption, CsrColumnDefects) {
  const auto csr = to_csr(testutil::small_coo());
  {
    AlignedVector<I32> col_idx(csr.col_idx());
    col_idx[0] = 17;  // way outside the 4 columns
    audit::AuditReport report;
    audit::audit_csr_raw(csr.rows(), csr.cols(), csr.row_ptr(), col_idx,
                         csr.values(), report);
    EXPECT_TRUE(report.has("csr.col.range"));
  }
  {
    AlignedVector<I32> col_idx(csr.col_idx());
    std::swap(col_idx[0], col_idx[1]);  // row 0 columns out of order
    audit::AuditReport report;
    audit::audit_csr_raw(csr.rows(), csr.cols(), csr.row_ptr(), col_idx,
                         csr.values(), report);
    EXPECT_TRUE(report.has("csr.col.order"));
  }
  {
    AlignedVector<I32> row_ptr(csr.row_ptr());
    row_ptr.pop_back();  // rows+1 invariant broken
    audit::AuditReport report;
    audit::audit_csr_raw(csr.rows(), csr.cols(), row_ptr, csr.col_idx(),
                         csr.values(), report);
    EXPECT_TRUE(report.has("csr.shape.valid"));
  }
}

TEST(AuditCorruption, SwappedCscColPtrEntries) {
  const auto csc = to_csc(testutil::small_coo());
  AlignedVector<I32> col_ptr(csc.col_ptr());
  std::swap(col_ptr[1], col_ptr[2]);  // [0,2,3,5,6] -> [0,3,2,5,6]
  audit::AuditReport report;
  audit::audit_csc_raw(csc.rows(), csc.cols(), col_ptr, csc.row_idx(),
                       csc.values(), report);
  EXPECT_TRUE(report.has("csc.col_ptr.monotone"));
}

TEST(AuditCorruption, EllPadSentinelBroken) {
  const auto ell = to_ell(testutil::small_coo());  // width 3
  AlignedVector<I32> col_idx(ell.col_idx());
  // Row 0 has 2 real entries (cols 0, 2); its pad slot must repeat 2.
  col_idx[2] = 1;
  audit::AuditReport report;
  audit::audit_ell_raw(ell.rows(), ell.cols(), ell.width(), ell.nnz(),
                       col_idx, ell.values(), report);
  EXPECT_TRUE(report.has("ell.pad.sentinel"));
}

TEST(AuditCorruption, EllPaddingTruncated) {
  const auto ell = to_ell(testutil::small_coo());
  AlignedVector<I32> col_idx(ell.col_idx());
  AlignedVector<double> values(ell.values());
  col_idx.pop_back();
  values.pop_back();
  audit::AuditReport report;
  audit::audit_ell_raw(ell.rows(), ell.cols(), ell.width(), ell.nnz(),
                       col_idx, values, report);
  EXPECT_TRUE(report.has("ell.shape.valid"));
}

TEST(AuditCorruption, EllInteriorZeroAndNnzMismatch) {
  const auto ell = to_ell(testutil::small_coo());
  {
    AlignedVector<double> values(ell.values());
    // Row 3 holds 3 real entries; zeroing the middle one makes it
    // padding-inside-the-prefix (the entry would vanish on round trip).
    values[3 * 3 + 1] = 0.0;
    audit::AuditReport report;
    audit::audit_ell_raw(ell.rows(), ell.cols(), ell.width(), ell.nnz(),
                         ell.col_idx(), values, report);
    EXPECT_TRUE(report.has("ell.pad.interior"));
  }
  {
    audit::AuditReport report;
    audit::audit_ell_raw(ell.rows(), ell.cols(), ell.width(), ell.nnz() + 1,
                         ell.col_idx(), ell.values(), report);
    EXPECT_TRUE(report.has("ell.nnz.count"));
  }
}

TEST(AuditCorruption, BcsrBlockMisaligned) {
  const auto bcsr = to_bcsr(testutil::small_coo(), I32{2});
  AlignedVector<double> values(bcsr.values());
  values.pop_back();  // values no longer nblocks * b * b
  audit::AuditReport report;
  audit::audit_bcsr_raw(bcsr.rows(), bcsr.cols(), bcsr.block_size(),
                        bcsr.nnz(), bcsr.block_row_ptr(),
                        bcsr.block_col_idx(), values, report);
  EXPECT_TRUE(report.has("bcsr.block.geometry"));
}

TEST(AuditCorruption, BcsrBlockColumnAndBounds) {
  const auto bcsr = to_bcsr(testutil::small_coo(), I32{2});
  {
    AlignedVector<I32> block_col_idx(bcsr.block_col_idx());
    block_col_idx[0] = 9;  // only 2 block columns exist
    audit::AuditReport report;
    audit::audit_bcsr_raw(bcsr.rows(), bcsr.cols(), bcsr.block_size(),
                          bcsr.nnz(), bcsr.block_row_ptr(), block_col_idx,
                          bcsr.values(), report);
    EXPECT_TRUE(report.has("bcsr.block.col_range"));
  }
  {
    // 3x3 diagonal with b=2: the last block row covers rows 2..3 but only
    // row 2 exists; a nonzero in its local row 1 lands outside the matrix.
    AlignedVector<I32> r = {0, 1, 2}, c = {0, 1, 2};
    AlignedVector<double> v = {1, 2, 3};
    const CooD diag(3, 3, std::move(r), std::move(c), std::move(v));
    const auto edge = to_bcsr(diag, I32{2});
    AlignedVector<double> values(edge.values());
    const usize last_block = edge.nnz_blocks() - 1;
    values[last_block * 4 + 2] = 7.0;  // local (1, 0) of the edge block
    audit::AuditReport report;
    audit::audit_bcsr_raw(edge.rows(), edge.cols(), edge.block_size(),
                          edge.nnz() + 1, edge.block_row_ptr(),
                          edge.block_col_idx(), values, report);
    EXPECT_TRUE(report.has("bcsr.block.bounds"));
  }
  {
    // Zeroing every entry of one stored block leaves a vacuous block:
    // legal but wasteful — a warning, plus the nnz count error.
    AlignedVector<double> values(bcsr.values());
    for (usize i = 0; i < 4; ++i) values[i] = 0.0;
    audit::AuditReport report;
    audit::audit_bcsr_raw(bcsr.rows(), bcsr.cols(), bcsr.block_size(),
                          bcsr.nnz(), bcsr.block_row_ptr(),
                          bcsr.block_col_idx(), values, report);
    EXPECT_TRUE(report.has("bcsr.block.occupancy"));
    EXPECT_TRUE(report.has("bcsr.nnz.count"));
  }
}

TEST(AuditCorruption, BellGroupExtentBroken) {
  const auto bell = to_bell(testutil::small_coo(), I32{2});
  AlignedVector<usize> offset(bell.offset());
  offset[1] += 1;
  audit::AuditReport report;
  audit::audit_bell_raw(bell.rows(), bell.cols(), bell.group_size(),
                        bell.nnz(), bell.width(), offset, bell.col_idx(),
                        bell.values(), report);
  EXPECT_TRUE(report.has("bell.group.extent"));
}

TEST(AuditCorruption, BellPadSentinelBroken) {
  const auto bell = to_bell(testutil::small_coo(), I32{2});
  // Group 1 (rows 2..3) has width 3; row 2 holds one real entry (col 1),
  // so its two pad slots must repeat column 1.
  AlignedVector<I32> col_idx(bell.col_idx());
  const usize row2_base = bell.offset()[1];
  col_idx[row2_base + 1] = 3;
  audit::AuditReport report;
  audit::audit_bell_raw(bell.rows(), bell.cols(), bell.group_size(),
                        bell.nnz(), bell.width(), bell.offset(), col_idx,
                        bell.values(), report);
  EXPECT_TRUE(report.has("bell.pad.sentinel"));
}

TEST(AuditCorruption, SellcPermNotBijective) {
  const auto sell = to_sellc(testutil::small_coo(), I32{2}, I32{2});
  AlignedVector<I32> perm(sell.perm());
  perm[0] = perm[1];  // one row mapped twice, another lost
  audit::AuditReport report;
  audit::audit_sellc_raw(sell.rows(), sell.cols(), sell.chunk_size(),
                         sell.nnz(), perm, sell.chunk_width(),
                         sell.chunk_offset(), sell.col_idx(), sell.values(),
                         report);
  EXPECT_TRUE(report.has("sellc.perm.bijective"));
}

TEST(AuditCorruption, SellcUnusedLaneHoldsData) {
  // 3 rows with chunk size 2: the final chunk's lane 1 is unused and must
  // stay zero.
  AlignedVector<I32> r = {0, 1, 2}, c = {0, 1, 2};
  AlignedVector<double> v = {1, 2, 3};
  const CooD diag(3, 3, std::move(r), std::move(c), std::move(v));
  const auto sell = to_sellc(diag, I32{2}, I32{2});
  AlignedVector<double> values(sell.values());
  const usize unused_slot = sell.chunk_offset()[1] + 1;  // chunk 1, lane 1
  values[unused_slot] = 5.0;
  audit::AuditReport report;
  audit::audit_sellc_raw(sell.rows(), sell.cols(), sell.chunk_size(),
                         sell.nnz(), sell.perm(), sell.chunk_width(),
                         sell.chunk_offset(), sell.col_idx(), values, report);
  EXPECT_TRUE(report.has("sellc.lane.empty"));
}

TEST(AuditCorruption, Csr5TileMetaOffByOne) {
  const auto csr5 = to_csr5(testutil::small_coo(), I32{2});
  AlignedVector<I32> tile_row(csr5.tile_row());  // [0, 2, 3]
  ASSERT_GE(tile_row.size(), 2u);
  tile_row[1] = 1;  // row 1 is empty: it cannot bracket tile 1's entries
  audit::AuditReport report;
  audit::audit_csr5_raw(csr5.csr(), csr5.tile_size(), tile_row, report);
  EXPECT_TRUE(report.has("csr5.tile.meta"));
}

TEST(AuditCorruption, HybTailSpillsFromUnfilledRow) {
  // Row 0 uses only 1 of 2 ELL slots yet spills an entry to the tail —
  // the converter's fill-ELL-first discipline is violated.
  AlignedVector<I32> ell_cols = {0, 0, 1, 2};
  AlignedVector<double> ell_vals = {1.0, 0.0, 2.0, 3.0};
  Ell<double, I32> ell(2, 4, 2, 3, std::move(ell_cols), std::move(ell_vals));
  AlignedVector<I32> tr = {0}, tc = {3};
  AlignedVector<double> tv = {9.0};
  Coo<double, I32> tail(2, 4, std::move(tr), std::move(tc), std::move(tv));
  const Hyb<double, I32> hyb(std::move(ell), std::move(tail));
  audit::AuditReport report;
  audit::audit(hyb, report);
  EXPECT_TRUE(report.has("hyb.tail.overflow"));
}

TEST(AuditCorruption, DenseNonFiniteValue) {
  Dense<double> d(2, 3);
  d.data()[4] = std::nan("");
  audit::AuditReport report;
  audit::audit(d, report);
  EXPECT_TRUE(report.has("dense.value.finite"));
  EXPECT_FALSE(report.ok());
}

// ------------------------------------------- converter preconditions --

TEST(ConverterPrecondition, ShuffledCooCanonicalizesBeforeConversion) {
  // The same six triplets as small_coo(), deliberately shuffled. The Coo
  // constructor must canonicalize them, so every converter sees sorted
  // input and the results are identical to the sorted-input ones.
  AlignedVector<I32> r = {3, 0, 2, 3, 0, 3};
  AlignedVector<I32> c = {2, 2, 1, 0, 0, 3};
  AlignedVector<double> v = {5, 2, 3, 4, 1, 6};
  const CooD shuffled(4, 4, std::move(r), std::move(c), std::move(v));
  EXPECT_TRUE(shuffled.is_canonical());
  EXPECT_EQ(shuffled, testutil::small_coo());
  EXPECT_EQ(to_coo(to_csr(shuffled)), testutil::small_coo());
  EXPECT_EQ(to_coo(to_csc(shuffled)), testutil::small_coo());
  EXPECT_EQ(to_coo(to_ell(shuffled)), testutil::small_coo());
  EXPECT_EQ(to_coo(to_bcsr(shuffled, I32{2})), testutil::small_coo());

  audit::AuditReport report;
  audit::audit_conversions(shuffled, report, "shuffled");
  EXPECT_TRUE(report.ok());
}

TEST(ConverterPrecondition, RawUnsortedTripletsAreFlaggedByTheAnalyzer) {
  // Bypassing the Coo constructor (as a buggy loader might) leaves
  // non-canonical triplets; the analyzer is the net that catches them.
  AlignedVector<I32> r = {1, 0}, c = {0, 0};
  AlignedVector<double> v = {1, 2};
  audit::AuditReport report;
  audit::audit_coo_raw<double, I32>(2, 2, r, c, v, report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("coo.order.canonical"));
}

// ------------------------------------------------ benchmark --audit --

TEST(BenchmarkAudit, AuditFlagAttachesCleanVerdict) {
  bench::CsrBenchmark<double, I32> benchmark;
  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 4;
  params.threads = 2;
  params.audit = true;
  benchmark.setup(testutil::random_coo(48, 48, 3.0, 7), params, "m");
  const bench::BenchResult r = benchmark.run(Variant::kSerial);
  EXPECT_TRUE(r.audit_run);
  EXPECT_EQ(r.audit_errors, 0u);
  EXPECT_EQ(r.audit_warnings, 0u);
  EXPECT_TRUE(r.audit_rules.empty());
  EXPECT_TRUE(r.verified);
}

TEST(BenchmarkAudit, AuditOffByDefault) {
  bench::EllBenchmark<double, I32> benchmark;
  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 4;
  benchmark.setup(testutil::random_coo(32, 32, 3.0, 9), params, "m");
  const bench::BenchResult r = benchmark.run(Variant::kSerial);
  EXPECT_FALSE(r.audit_run);
  EXPECT_EQ(r.audit_errors, 0u);
}

TEST(BenchmarkAudit, AuditEmitsTelemetrySpan) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  bench::CsrBenchmark<double, I32> benchmark;
  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 4;
  params.audit = true;
  params.sink = sink;
  benchmark.setup(testutil::random_coo(32, 32, 3.0, 5), params, "m");
  benchmark.run(Variant::kSerial);
  bool saw_audit_span = false;
  for (const auto& e : sink->events()) {
    if (e.kind == telemetry::EventKind::kSpanBegin && e.name == "audit") {
      saw_audit_span = true;
    }
  }
  EXPECT_TRUE(saw_audit_span);
}

}  // namespace
}  // namespace spmm
