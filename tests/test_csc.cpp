// Tests for the CSC format and its k-slice parallel SpMM.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_csc.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

TEST(Csc, SmallMatrixLayout) {
  const auto csc = to_csc(testutil::small_coo());
  // Matrix columns: col0 has rows {0,3}, col1 {2}, col2 {0,3}, col3 {3}.
  const AlignedVector<std::int32_t> expect_ptr = {0, 2, 3, 5, 6};
  EXPECT_EQ(csc.col_ptr(), expect_ptr);
  EXPECT_EQ(csc.col_nnz(0), 2);
  EXPECT_EQ(csc.col_nnz(1), 1);
  // Rows within a column are sorted ascending.
  EXPECT_EQ(csc.row_idx()[0], 0);
  EXPECT_EQ(csc.row_idx()[1], 3);
  EXPECT_DOUBLE_EQ(csc.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(csc.values()[1], 4.0);
}

TEST(Csc, RoundTrip) {
  for (auto placement : {gen::Placement::kScattered, gen::Placement::kBanded,
                         gen::Placement::kClustered}) {
    const CooD m = testutil::random_coo(120, 90, 5.0, 17, placement);
    EXPECT_EQ(to_coo(to_csc(m)), m);
  }
}

TEST(Csc, RoundTripEmptyAndRectangular) {
  EXPECT_EQ(to_coo(to_csc(CooD(4, 9))), CooD(4, 9));
  const CooD wide = testutil::random_coo(10, 300, 4.0, 3);
  EXPECT_EQ(to_coo(to_csc(wide)), wide);
}

TEST(Csc, ValidationCatchesBadColPtr) {
  AlignedVector<std::int32_t> ptr = {0, 2, 1};
  AlignedVector<std::int32_t> row = {0, 1};
  AlignedVector<double> val = {1, 2};
  EXPECT_THROW((Csc<double, std::int32_t>(2, 2, std::move(ptr),
                                          std::move(row), std::move(val))),
               Error);
}

TEST(Csc, ValidationCatchesRowOutOfRange) {
  AlignedVector<std::int32_t> ptr = {0, 1};
  AlignedVector<std::int32_t> row = {7};
  AlignedVector<double> val = {1};
  EXPECT_THROW((Csc<double, std::int32_t>(2, 1, std::move(ptr),
                                          std::move(row), std::move(val))),
               Error);
}

class CscKernelTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(90, 110, 6.0, 23);
    Rng rng(9);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(GetParam()));
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(GetParam()));
    c_.fill(-3.0);
  }

  testutil::CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_P(CscKernelTest, Serial) {
  spmm_csc_serial(to_csc(a_), b_, c_);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(CscKernelTest, ParallelKSlices) {
  // Thread counts below, at, and above k: slices must partition k
  // correctly even when some threads get empty slices.
  for (int t : {1, 2, 3, 7, 64}) {
    c_.fill(-3.0);
    spmm_csc_parallel(to_csc(a_), b_, c_, t);
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << "threads " << t;
  }
}

TEST_P(CscKernelTest, ParallelSlab) {
  // Atomic-free column-parallel path: each part owns a private m×k slab
  // (columns scatter into arbitrary rows), merged in part order. Thread
  // counts stay modest: each one allocates t full slabs, and TSan runs
  // this instrumented on small CI hosts.
  const auto csc = to_csc(a_);
  for (int t : {1, 2, 3, 7, 16}) {
    c_.fill(-3.0);
    spmm_csc_parallel_slab(csc, b_, c_, t);
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << "threads " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CscKernelTest,
                         ::testing::Values(1, 2, 8, 13, 64),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(CscKernel, ShapeMismatchThrows) {
  const auto csc = to_csc(testutil::small_coo());
  Dense<double> b(3, 4);
  Dense<double> c(4, 4);
  EXPECT_THROW(spmm_csc_serial(csc, b, c), Error);
}

}  // namespace
}  // namespace spmm
