# Crash/resume gate for the perf smoke (docs/ROBUSTNESS.md): crash the
# sweep at a seeded journal append (exit 137), then resume — the
# journaled cells must replay and the JSON artifact must materialize.
# Driven as `cmake -DSMOKE=... -DSCRATCH=... -P` from ctest so it runs
# on any generator without a shell dependency.
file(REMOVE_RECURSE ${SCRATCH})
file(MAKE_DIRECTORY ${SCRATCH})

set(SMOKE_ARGS --scale 0.02 -n 2 -w 0 -t 2 -k 8
    -o ${SCRATCH}/bench.json --journal ${SCRATCH}/bench.jnl)

execute_process(
  COMMAND ${SMOKE} ${SMOKE_ARGS} --faults journal.crash@10
  RESULT_VARIABLE crash_status OUTPUT_QUIET ERROR_QUIET)
if(NOT crash_status EQUAL 137)
  message(FATAL_ERROR
          "crash run exited '${crash_status}', want 137 (seeded kill)")
endif()
if(EXISTS ${SCRATCH}/bench.json)
  message(FATAL_ERROR "interrupted sweep must not publish an artifact")
endif()

execute_process(
  COMMAND ${SMOKE} ${SMOKE_ARGS} --resume
  RESULT_VARIABLE resume_status OUTPUT_VARIABLE resume_out ERROR_QUIET)
if(NOT resume_status EQUAL 0)
  message(FATAL_ERROR "resume exited '${resume_status}', want 0")
endif()
if(NOT resume_out MATCHES "replayed 10 cell")
  message(FATAL_ERROR "resume did not replay the journaled cells")
endif()
if(NOT EXISTS ${SCRATCH}/bench.json)
  message(FATAL_ERROR "resumed sweep did not publish the artifact")
endif()
message(STATUS "perf_smoke_resume: PASS")
