// Shape tests for the analytical performance model: the qualitative
// relationships every paper figure depends on must hold in the model.
// (Absolute MFLOPs calibration is recorded in EXPERIMENTS.md; these tests
// pin the orderings and monotonicities.)
#include <gtest/gtest.h>

#include "perfmodel/suite_input.hpp"
#include "test_util.hpp"

namespace spmm::model {
namespace {

const ModelInput& input(const std::string& name) {
  static std::map<std::string, ModelInput> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, suite_model_input(name, 0.03)).first;
  }
  return it->second;
}

KernelSpec spec(Format f, Variant v, int threads = 1, int k = 128,
                int block = 4) {
  KernelSpec s;
  s.format = f;
  s.variant = v;
  s.threads = threads;
  s.k = k;
  s.block_size = block;
  return s;
}

TEST(Machine, BandwidthSaturates) {
  const Machine m = aries();
  EXPECT_DOUBLE_EQ(m.bandwidth_gbs(1), m.bw_single_gbs);
  EXPECT_GT(m.bandwidth_gbs(8), m.bandwidth_gbs(2));
  EXPECT_LE(m.bandwidth_gbs(96), m.bw_peak_gbs);
  // Near saturation, adding threads barely helps.
  EXPECT_LT(m.bandwidth_gbs(96) - m.bandwidth_gbs(48),
            m.bandwidth_gbs(8) - m.bandwidth_gbs(4));
}

TEST(Machine, PresetsAreSane) {
  EXPECT_EQ(grace_hopper().physical_cores, 72);
  EXPECT_EQ(grace_hopper().smt_per_core, 1);
  EXPECT_EQ(aries().physical_cores, 48);
  EXPECT_EQ(aries().max_threads(), 96);
  EXPECT_TRUE(h100(GpuRuntime::kVendor).is_gpu);
  EXPECT_GT(h100(GpuRuntime::kVendor).runtime_efficiency,
            h100(GpuRuntime::kOmpOffload).runtime_efficiency);
  EXPECT_GT(h100(GpuRuntime::kVendor).link_gbs,
            a100(GpuRuntime::kVendor).link_gbs);
}

TEST(StoredEntries, EllCarriesPadding) {
  const auto& in = input("torso1");  // column ratio 44
  EXPECT_GT(stored_entries(in, Format::kEll, 4),
            10.0 * stored_entries(in, Format::kCsr, 4));
  // Uniform-row matrix: ELL padding is negligible.
  const auto& uniform = input("af23560");
  EXPECT_LT(stored_entries(uniform, Format::kEll, 4),
            1.1 * stored_entries(uniform, Format::kCsr, 4));
}

TEST(StoredEntries, BcsrGrowsWithBlockSize) {
  const auto& in = input("bcsstk17");
  EXPECT_LE(stored_entries(in, Format::kBcsr, 2),
            stored_entries(in, Format::kBcsr, 4));
  EXPECT_LT(stored_entries(in, Format::kBcsr, 4),
            stored_entries(in, Format::kBcsr, 16));
}

TEST(StoredEntries, SellCPadsLessThanEll) {
  const auto& in = input("torso1");
  EXPECT_LT(stored_entries(in, Format::kSellC, 4),
            stored_entries(in, Format::kEll, 4));
  EXPECT_LE(stored_entries(in, Format::kBell, 4),
            stored_entries(in, Format::kEll, 4));
}

TEST(CostModel, ParallelFasterThanSerial) {
  const Machine gh = grace_hopper();
  for (Format f : kCoreFormats) {
    const double serial =
        predict_mflops(gh, input("cant"), spec(f, Variant::kSerial));
    const double parallel = predict_mflops(
        gh, input("cant"), spec(f, Variant::kParallel, 32));
    EXPECT_GT(parallel, 2.0 * serial) << format_name(f);
  }
}

TEST(CostModel, ThreadScalingMonotoneToPhysicalCores) {
  const Machine gh = grace_hopper();
  double prev = 0.0;
  for (int t : {2, 4, 8, 16, 32, 64}) {
    const double mf = predict_mflops(gh, input("cop20k_A"),
                                     spec(Format::kCsr, Variant::kParallel, t));
    EXPECT_GE(mf, prev * 0.98) << "threads " << t;
    prev = mf;
  }
}

TEST(CostModel, SmtHelpsBlockedFormatsMore) {
  // Paper §6.1: past the physical core count, blocked formats profit
  // from hyperthreading; COO/CSR stall.
  const Machine ar = aries();
  const auto& in = input("bcsstk17");
  const double csr_48 =
      predict_mflops(ar, in, spec(Format::kCsr, Variant::kParallel, 48));
  const double csr_96 =
      predict_mflops(ar, in, spec(Format::kCsr, Variant::kParallel, 96));
  const double bcsr_48 =
      predict_mflops(ar, in, spec(Format::kBcsr, Variant::kParallel, 48));
  const double bcsr_96 =
      predict_mflops(ar, in, spec(Format::kBcsr, Variant::kParallel, 96));
  EXPECT_GT(bcsr_96 / bcsr_48, csr_96 / csr_48);
}

TEST(CostModel, EllCollapsesOnTorso1) {
  // The headline blocked-format failure: ELL on column ratio 44.
  const Machine gh = grace_hopper();
  const double ell =
      predict_mflops(gh, input("torso1"), spec(Format::kEll, Variant::kSerial));
  const double csr =
      predict_mflops(gh, input("torso1"), spec(Format::kCsr, Variant::kSerial));
  EXPECT_LT(ell, 0.15 * csr);
  // ...but not on the uniform af23560.
  const double ell_u = predict_mflops(gh, input("af23560"),
                                      spec(Format::kEll, Variant::kSerial));
  const double csr_u = predict_mflops(gh, input("af23560"),
                                      spec(Format::kCsr, Variant::kSerial));
  EXPECT_GT(ell_u, 0.7 * csr_u);
}

TEST(CostModel, BcsrSerialDegradesWithBlockSize) {
  // Study 5: "the serial versions did increasingly worse as the block
  // size got bigger", on both machines.
  for (const Machine& m : {grace_hopper(), aries()}) {
    const auto& in = input("pdb1HYS");
    const double b2 =
        predict_mflops(m, in, spec(Format::kBcsr, Variant::kSerial, 1, 128, 2));
    const double b4 =
        predict_mflops(m, in, spec(Format::kBcsr, Variant::kSerial, 1, 128, 4));
    const double b16 = predict_mflops(
        m, in, spec(Format::kBcsr, Variant::kSerial, 1, 128, 16));
    EXPECT_GT(b2, b4) << m.name;
    EXPECT_GT(b4, b16) << m.name;
  }
}

TEST(CostModel, AriesSerialFasterExceptBcsr) {
  // Study 6: x86 wins serial COO/CSR/ELL; BCSR wins on Arm.
  const Machine gh = grace_hopper();
  const Machine ar = aries();
  const auto& in = input("cant");
  for (Format f : {Format::kCoo, Format::kCsr, Format::kEll}) {
    EXPECT_GT(predict_mflops(ar, in, spec(f, Variant::kSerial)),
              predict_mflops(gh, in, spec(f, Variant::kSerial)))
        << format_name(f);
  }
  EXPECT_GT(predict_mflops(gh, in, spec(Format::kBcsr, Variant::kSerial)),
            predict_mflops(ar, in, spec(Format::kBcsr, Variant::kSerial)));
}

TEST(CostModel, TransposePenalizesScatteredNotBanded) {
  // Study 8: transposing B thrashes the cache unless the nonzeros are
  // clustered; only a few matrices benefit.
  const Machine gh = grace_hopper();
  const auto& scattered = input("cop20k_A");
  const double plain = predict_mflops(
      gh, scattered, spec(Format::kCsr, Variant::kParallel, 32));
  const double transposed = predict_mflops(
      gh, scattered, spec(Format::kCsr, Variant::kParallelTranspose, 32));
  EXPECT_LT(transposed, plain);

  const auto& banded = input("af23560");
  const double plain_b = predict_mflops(
      gh, banded, spec(Format::kCsr, Variant::kParallel, 32));
  const double transposed_b = predict_mflops(
      gh, banded, spec(Format::kCsr, Variant::kParallelTranspose, 32));
  // Neutral-ish: within a factor of two rather than collapsing.
  EXPECT_GT(transposed_b, 0.5 * plain_b);
  // The banded matrix suffers relatively less from the transpose.
  EXPECT_GT(transposed_b / plain_b, transposed / plain);
}

TEST(CostModel, VendorGpuBeatsOffload) {
  // Study 7: cuSPARSE wins on most matrices.
  const auto& in = input("cant");
  const double offload = predict_mflops(
      h100(GpuRuntime::kOmpOffload), in, spec(Format::kCsr, Variant::kDevice));
  const double vendor = predict_mflops(
      h100(GpuRuntime::kVendor), in, spec(Format::kCsr, Variant::kDevice));
  EXPECT_GT(vendor, offload);
}

TEST(CostModel, KLoopRaisesThroughputOnArm) {
  // Study 4 (Arm): "a higher value of k seemed to lead to more
  // performance" across the studied range.
  const Machine gh = grace_hopper();
  double prev = 0.0;
  for (int k : {8, 16, 64, 128, 256, 512, 1028}) {
    const double mf = predict_mflops(
        gh, input("x104"), spec(Format::kCsr, Variant::kParallel, 32, k));
    EXPECT_GE(mf, prev * 0.95) << "k=" << k;
    prev = mf;
  }
}

TEST(CostModel, AriesKLoopSaturates) {
  // Study 4 (x86): gains flatten by k≈512.
  const Machine ar = aries();
  const auto& in = input("x104");
  const double k8 = predict_mflops(
      ar, in, spec(Format::kCsr, Variant::kParallel, 32, 8));
  const double k512 = predict_mflops(
      ar, in, spec(Format::kCsr, Variant::kParallel, 32, 512));
  const double k1028 = predict_mflops(
      ar, in, spec(Format::kCsr, Variant::kParallel, 32, 1028));
  EXPECT_GT(k512, k8);
  // Marginal gain past 512 is small (< 10%).
  EXPECT_LT(k1028, 1.10 * k512);
}

TEST(CostModel, ManualOptimizationHelpsSerial) {
  const Machine ar = aries();
  KernelSpec plain = spec(Format::kCsr, Variant::kSerial);
  KernelSpec opt = plain;
  opt.manually_optimized = true;
  EXPECT_GT(predict_mflops(ar, input("cant"), opt),
            predict_mflops(ar, input("cant"), plain));
}

TEST(CostModel, GpuTransferDominatesOnPcie) {
  // Why the thesis's A100 numbers were fragile: everything moves over
  // PCIe each call. The same kernel pays far more on A100 than H100.
  const auto& in = input("cant");
  const auto s = spec(Format::kCsr, Variant::kDevice);
  const auto h = predict(h100(GpuRuntime::kVendor), in, s);
  const auto a = predict(a100(GpuRuntime::kVendor), in, s);
  EXPECT_GT(h.mflops, 2.0 * a.mflops);
}

TEST(CostModel, ExtensionFormatsRepairTorso1) {
  // The §6.3.1 formats' raison d'être in the model: on the ELL failure
  // case each remedy beats ELL, and the padding-free ones beat them all.
  const Machine gh = grace_hopper();
  const auto& in = input("torso1");
  const double ell =
      predict_mflops(gh, in, spec(Format::kEll, Variant::kParallel, 32));
  const double bell =
      predict_mflops(gh, in, spec(Format::kBell, Variant::kParallel, 32));
  const double sellc =
      predict_mflops(gh, in, spec(Format::kSellC, Variant::kParallel, 32));
  const double hyb =
      predict_mflops(gh, in, spec(Format::kHyb, Variant::kParallel, 32));
  const double csr5 =
      predict_mflops(gh, in, spec(Format::kCsr5, Variant::kParallel, 32));
  EXPECT_GT(bell, ell);
  EXPECT_GT(sellc, bell);
  EXPECT_GT(hyb, sellc);
  EXPECT_GT(csr5, sellc);
}

TEST(CostModel, Csr5TracksCsrOnRegularMatrices) {
  // No padding and near-identical traffic: CSR5 should sit within ~20%
  // of CSR everywhere, above it in parallel (better load balance).
  const Machine gh = grace_hopper();
  for (const char* name : {"cant", "af23560", "cop20k_A"}) {
    const auto& in = input(name);
    const double csr =
        predict_mflops(gh, in, spec(Format::kCsr, Variant::kSerial));
    const double csr5 =
        predict_mflops(gh, in, spec(Format::kCsr5, Variant::kSerial));
    EXPECT_GT(csr5, 0.8 * csr) << name;
    EXPECT_LT(csr5, 1.2 * csr) << name;
    const double csr_p =
        predict_mflops(gh, in, spec(Format::kCsr, Variant::kParallel, 32));
    const double csr5_p =
        predict_mflops(gh, in, spec(Format::kCsr5, Variant::kParallel, 32));
    EXPECT_GT(csr5_p, csr_p) << name;
  }
}

TEST(CostModel, PredictionFieldsConsistent) {
  const auto p = predict(grace_hopper(), input("cant"),
                         spec(Format::kCsr, Variant::kParallel, 32));
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.bytes, 0.0);
  EXPECT_NEAR(p.mflops, p.flops_true / p.seconds / 1e6, 1e-6);
  EXPECT_GE(p.flops_padded, p.flops_true);
}

TEST(CostModel, InvalidSpecThrows) {
  auto s = spec(Format::kCsr, Variant::kSerial);
  s.k = 0;
  EXPECT_THROW(predict(grace_hopper(), input("cant"), s), Error);
  s.k = 128;
  s.threads = 0;
  EXPECT_THROW(predict(grace_hopper(), input("cant"), s), Error);
  // Device variant on a CPU machine is a usage error.
  s.threads = 1;
  s.variant = Variant::kDevice;
  EXPECT_THROW(predict(grace_hopper(), input("cant"), s), Error);
}

}  // namespace
}  // namespace spmm::model
