// Vocabulary registry consistency (src/support/registry.hpp).
//
// The registry is the single source of truth for every stable name the
// suite emits; the compiler already rejects duplicates inside each
// table. These tests pin the runtime agreements spmm_lint cannot see
// from source scanning alone: the audit rule_registry(), the fault
// injector's site vocabulary, the typed-error defaults, the hwprof
// counter names, and the ArgParser flag surface must all match the
// registry exactly.
#include <algorithm>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.hpp"
#include "hwprof/hwprof.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injector.hpp"
#include "support/cli.hpp"
#include "support/registry.hpp"

namespace spmm {
namespace {

TEST(Registry, AuditRulesMatchRuleRegistry) {
  const auto& live = audit::rule_registry();
  ASSERT_EQ(live.size(), std::size(registry::kAuditRules));
  for (std::size_t i = 0; i < live.size(); ++i) {
    const registry::AuditRule& decl = registry::kAuditRules[i];
    EXPECT_EQ(live[i].id, decl.name);
    EXPECT_EQ(live[i].format, decl.format);
    EXPECT_EQ(live[i].severity == audit::Severity::kWarning ? "warning"
                                                            : "error",
              decl.severity);
    EXPECT_EQ(live[i].description, decl.description);
  }
}

TEST(Registry, AuditRulesSortedAndFindable) {
  EXPECT_TRUE(std::is_sorted(
      std::begin(registry::kAuditRules), std::end(registry::kAuditRules),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  for (const registry::AuditRule& decl : registry::kAuditRules) {
    const audit::RuleInfo* info = audit::find_rule(decl.name);
    ASSERT_NE(info, nullptr) << decl.name;
    EXPECT_EQ(info->id, decl.name);
  }
  EXPECT_EQ(audit::find_rule("no.such.rule"), nullptr);
}

TEST(Registry, FaultSitesMatchInjectorVocabulary) {
  const auto& live = resilience::FaultInjector::known_sites();
  ASSERT_EQ(live.size(), std::size(registry::kFaultSites));
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], registry::kFaultSites[i].name);
  }
}

TEST(Registry, ErrorDefaultsComeFromRegistry) {
  EXPECT_EQ(Error("x").error_code(), names::errc::kError);
  EXPECT_EQ(resilience::InputError("x").error_code(),
            names::errc::kInputInvalid);
  EXPECT_EQ(resilience::FormatError("x").error_code(),
            names::errc::kFormatFailed);
  EXPECT_EQ(resilience::KernelError("x").error_code(),
            names::errc::kKernelFailed);
  EXPECT_EQ(resilience::TimeoutError("x").error_code(),
            names::errc::kTimeoutCell);
  // Every declared code must be dotted-lowercase or the generic "error".
  for (const registry::ErrorCode& e : registry::kErrorCodes) {
    EXPECT_TRUE(registry::find_by_name(registry::kErrorCodes, e.name) == &e);
  }
}

TEST(Registry, HwprofCountersAreDeclared) {
  // Every hwprof short name, composed through the "hw." prefix family,
  // must be a declared telemetry counter (the per-counter rows extend
  // the kHwPrefix family; summary tables key on them).
  for (int i = 0; i < hwprof::kCounterCount; ++i) {
    const std::string composed = names::hw_counter(
        hwprof::counter_name(static_cast<hwprof::Counter>(i)));
    const registry::TelemetryName* entry =
        registry::find_by_name(registry::kTelemetryNames, composed);
    ASSERT_NE(entry, nullptr) << composed;
    EXPECT_EQ(entry->kind, registry::TelemetryKind::kCounter);
    EXPECT_EQ(entry->group, "hwprof");
  }
}

TEST(Registry, PrefixCompositionHelpers) {
  EXPECT_EQ(names::fault_counter(names::site::kCellFail), "fault.cell.fail");
  EXPECT_EQ(names::cell_error_counter(names::errc::kDevOom),
            "cell.error.dev.oom");
  EXPECT_EQ(names::hw_counter("cycles"), names::tel::kHwCycles);
}

TEST(Registry, BenchParamsFlagsAreDeclared) {
  ArgParser parser("registry test");
  BenchParams::register_options(parser);
  std::set<std::string_view> declared;
  for (const registry::CliFlag& f : registry::kCliFlags) {
    declared.insert(f.name);
  }
  for (const std::string& name : parser.option_names()) {
    EXPECT_TRUE(declared.count(name) != 0)
        << "flag --" << name << " not in SPMM_CLI_FLAGS";
  }
}

TEST(Registry, CsvHeaderMatchesColumnTable) {
  const std::vector<std::string> header = registry::bench_csv_header();
  ASSERT_EQ(header.size(), std::size(registry::kCsvColumns));
  for (std::size_t i = 0; i < header.size(); ++i) {
    EXPECT_EQ(header[i], registry::kCsvColumns[i].name);
  }
  const std::string joined = registry::bench_csv_header_joined();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(joined.begin(), joined.end(), ',')),
            header.size() - 1);
  EXPECT_EQ(joined.rfind("matrix,kernel,variant,", 0), 0u);
}

TEST(Registry, LintFindingIdsStable) {
  // The finding ids are API the same way rule ids are: CI greps for
  // them. Pin the full set.
  const std::set<std::string_view> expect = {
      "lint.counter.undeclared", "lint.counter.unused",
      "lint.error_code.undeclared", "lint.error_code.unused",
      "lint.rule.undeclared", "lint.rule.unused",
      "lint.site.undeclared", "lint.site.unused",
      "lint.flag.undeclared", "lint.flag.unused",
      "lint.literal.raw", "lint.doc.missing_row", "lint.doc.stale_row",
      "lint.csv.order", "lint.artifact.key"};
  std::set<std::string_view> got;
  for (const registry::LintFinding& f : registry::kLintFindings) {
    got.insert(f.name);
  }
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace spmm
