// Tests for the CSR5-inspired tiled format: tile metadata invariants,
// round trips, kernel correctness across tile sizes (including tiles
// much smaller than rows and rows spanning many tiles), and the
// load-balance property the format exists for.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_csr5.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

CooD heavy_row_matrix() {
  // One 500-entry row in a sea of 3-entry rows: the row spans many tiles.
  gen::MatrixSpec spec;
  spec.name = "heavy";
  spec.rows = spec.cols = 600;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.mean = 3;
  spec.row_dist.max_nnz = 500;
  spec.row_dist.force_max_row = true;
  spec.placement.kind = gen::Placement::kScattered;
  return gen::generate<double, std::int32_t>(spec);
}

TEST(Csr5, TileMetadataInvariants) {
  const CooD m = heavy_row_matrix();
  const auto csr5 = to_csr5(m, 64);
  EXPECT_EQ(csr5.tiles(), (m.nnz() + 63) / 64);
  EXPECT_EQ(csr5.nnz(), m.nnz());
  // tile_row[t] must contain entry t*64: row_ptr[r] <= t*64 < row_ptr[r+1].
  const auto& rp = csr5.csr().row_ptr();
  for (usize t = 0; t < csr5.tiles(); ++t) {
    const auto first = static_cast<std::int32_t>(t * 64);
    const std::int32_t r = csr5.tile_row()[t];
    EXPECT_LE(rp[r], first);
    EXPECT_GT(rp[r + 1], first);
  }
}

TEST(Csr5, RoundTrip) {
  const CooD m = heavy_row_matrix();
  for (std::int32_t tile : {1, 7, 64, 256, 100000}) {
    EXPECT_EQ(to_coo(to_csr5(m, tile)), m) << "tile " << tile;
  }
}

TEST(Csr5, NoPaddingBytes) {
  const CooD m = heavy_row_matrix();
  const auto csr5 = to_csr5(m, 256);
  // Storage = CSR + one index per tile; far below ELL on this matrix.
  EXPECT_LE(csr5.bytes(),
            to_csr(m).bytes() + csr5.tiles() * sizeof(std::int32_t));
}

TEST(Csr5, RejectsBadTileSize) {
  EXPECT_THROW(to_csr5(testutil::small_coo(), 0), Error);
}

class Csr5KernelTest : public ::testing::TestWithParam<int> {};

TEST_P(Csr5KernelTest, MatchesReferenceAcrossMatrices) {
  const int tile = GetParam();
  for (const CooD& m :
       {heavy_row_matrix(),
        testutil::random_coo(97, 97, 5.0, 3, gen::Placement::kClustered),
        testutil::random_coo(40, 80, 4.0, 9)}) {
    Rng rng(8);
    Dense<double> b(static_cast<usize>(m.cols()), 16);
    b.fill_random(rng);
    const auto expected = spmm_reference(m, b);
    Dense<double> c(static_cast<usize>(m.rows()), 16);
    const auto csr5 = to_csr5(m, tile);

    spmm_csr5_serial(csr5, b, c);
    EXPECT_LE(max_abs_diff(expected, c), kTol) << "serial tile " << tile;
    for (int t : {1, 2, 4, 16}) {
      c.fill(-1.0);
      spmm_csr5_parallel(csr5, b, c, t);
      EXPECT_LE(max_abs_diff(expected, c), kTol)
          << "parallel tile " << tile << " threads " << t;
    }
  }
}

// Tile sizes below, around, and above typical row lengths.
INSTANTIATE_TEST_SUITE_P(TileSizes, Csr5KernelTest,
                         ::testing::Values(1, 3, 32, 256, 4096),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Csr5, EmptyMatrix) {
  const auto csr5 = to_csr5(CooD(6, 6), 256);
  EXPECT_EQ(csr5.tiles(), 0u);
  Dense<double> b(6, 4);
  Dense<double> c(6, 4);
  c.fill(5.0);
  spmm_csr5_serial(csr5, b, c);
  for (usize i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);
  spmm_csr5_parallel(csr5, b, c, 4);
  for (usize i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);
}

TEST(Csr5, DeterministicAcrossThreadCounts) {
  // Two-phase merge: bitwise identical results regardless of threads.
  const CooD m = heavy_row_matrix();
  const auto csr5 = to_csr5(m, 64);
  Rng rng(2);
  Dense<double> b(static_cast<usize>(m.cols()), 8);
  b.fill_random(rng);
  Dense<double> c1(static_cast<usize>(m.rows()), 8);
  Dense<double> c2(static_cast<usize>(m.rows()), 8);
  spmm_csr5_parallel(csr5, b, c1, 1);
  spmm_csr5_parallel(csr5, b, c2, 7);
  EXPECT_EQ(c1, c2);
}

TEST(Csr5, WorkBalanceIndependentOfRowStructure) {
  // Every tile holds exactly tile_size entries (except the last): the
  // torso1 pathology cannot imbalance it.
  const CooD m = heavy_row_matrix();
  const auto csr5 = to_csr5(m, 64);
  // A row of 500 entries spans ceil(500/64)+1 >= 8 tiles; verify chained
  // boundary handling kicked in by counting tiles whose tile_row is the
  // heavy row.
  const std::int32_t heavy = static_cast<std::int32_t>(m.rows() / 2);
  int tiles_in_heavy = 0;
  for (usize t = 0; t < csr5.tiles(); ++t) {
    if (csr5.tile_row()[t] == heavy) ++tiles_in_heavy;
  }
  EXPECT_GE(tiles_in_heavy, 6);
}

}  // namespace
}  // namespace spmm
