// Kernel correctness: every format × variant × k against the dense GEMM
// oracle, over a parameterized family of matrix structures. This is the
// central correctness net for the whole kernel zoo.
#include <gtest/gtest.h>

#include "devsim/device.hpp"
#include "kernels/dense_ref.hpp"
#include "kernels/spmm_bcsr.hpp"
#include "kernels/spmm_bell.hpp"
#include "kernels/spmm_common.hpp"
#include "kernels/spmm_coo.hpp"
#include "kernels/spmm_csr.hpp"
#include "kernels/spmm_ell.hpp"
#include "kernels/spmm_sellc.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;

constexpr double kTol = 1e-10;

struct KernelCase {
  std::string name;
  std::int64_t rows;
  double avg;
  gen::Placement placement;
  int k;
};

class SpmmKernelTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    a_ = testutil::random_coo(p.rows, p.rows, p.avg, 4242, p.placement);
    Rng rng(7);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(p.k));
    b_.fill_random(rng);
    bt_ = b_.transposed();
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(p.k));
  }

  void expect_match(const char* what) {
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << what;
  }

  CooD a_;
  Dense<double> b_, bt_, c_, expected_;
  dev::DeviceArena arena_;
};

TEST_P(SpmmKernelTest, ReferenceAgreesWithDenseGemm) {
  // The COO reference itself is validated against the O(n³) oracle.
  const Dense<double> ad = to_dense(a_);
  Dense<double> oracle(ad.rows(), b_.cols());
  gemm_reference(ad, b_, oracle);
  EXPECT_LE(max_abs_diff(oracle, expected_), kTol);
}

TEST_P(SpmmKernelTest, CooSerial) {
  spmm_coo_serial(a_, b_, c_);
  expect_match("coo serial");
}

TEST_P(SpmmKernelTest, CooParallel) {
  for (int t : {1, 3, 8}) {
    c_.fill(-1.0);
    spmm_coo_parallel(a_, b_, c_, t);
    expect_match("coo parallel");
  }
}

TEST_P(SpmmKernelTest, CooParallelSlab) {
  // Atomic-free nnz-balanced path: equal-nnz entry ranges may split a
  // row mid-way, so each part accumulates into a private slab and the
  // merge phase folds slabs in ascending part order.
  for (int t : {1, 3, 8}) {
    c_.fill(-1.0);
    spmm_coo_parallel_slab(a_, b_, c_, t);
    expect_match("coo parallel slab");
  }
}

TEST_P(SpmmKernelTest, CooParallelNnzSched) {
  spmm_coo_parallel(a_, b_, c_, 4, Sched::kNnz);
  expect_match("coo parallel sched=nnz");
  c_.fill(-1.0);
  spmm_coo_parallel_transpose(a_, bt_, c_, 4, Sched::kNnz);
  expect_match("coo parallel-T sched=nnz");
}

TEST_P(SpmmKernelTest, CooDevice) {
  spmm_coo_device(arena_, a_, b_, c_);
  expect_match("coo device");
}

TEST_P(SpmmKernelTest, CooTransposeForms) {
  spmm_coo_serial_transpose(a_, bt_, c_);
  expect_match("coo serial-T");
  c_.fill(-1.0);
  spmm_coo_parallel_transpose(a_, bt_, c_, 4);
  expect_match("coo omp-T");
  c_.fill(-1.0);
  spmm_coo_device_transpose(arena_, a_, bt_, c_);
  expect_match("coo gpu-T");
}

TEST_P(SpmmKernelTest, CsrAllForms) {
  const auto csr = to_csr(a_);
  spmm_csr_serial(csr, b_, c_);
  expect_match("csr serial");
  c_.fill(-1.0);
  spmm_csr_parallel(csr, b_, c_, 4);
  expect_match("csr omp");
  c_.fill(-1.0);
  spmm_csr_device(arena_, csr, b_, c_);
  expect_match("csr gpu");
  c_.fill(-1.0);
  spmm_csr_serial_transpose(csr, bt_, c_);
  expect_match("csr serial-T");
  c_.fill(-1.0);
  spmm_csr_parallel_transpose(csr, bt_, c_, 4);
  expect_match("csr omp-T");
  c_.fill(-1.0);
  spmm_csr_device_transpose(arena_, csr, bt_, c_);
  expect_match("csr gpu-T");
}

TEST_P(SpmmKernelTest, EllAllForms) {
  const auto ell = to_ell(a_);
  spmm_ell_serial(ell, b_, c_);
  expect_match("ell serial");
  c_.fill(-1.0);
  spmm_ell_parallel(ell, b_, c_, 4);
  expect_match("ell omp");
  c_.fill(-1.0);
  spmm_ell_device(arena_, ell, b_, c_);
  expect_match("ell gpu");
  c_.fill(-1.0);
  spmm_ell_serial_transpose(ell, bt_, c_);
  expect_match("ell serial-T");
  c_.fill(-1.0);
  spmm_ell_parallel_transpose(ell, bt_, c_, 4);
  expect_match("ell omp-T");
  c_.fill(-1.0);
  spmm_ell_device_transpose(arena_, ell, bt_, c_);
  expect_match("ell gpu-T");
}

TEST_P(SpmmKernelTest, BcsrAllFormsAndBlockSizes) {
  for (std::int32_t block : {1, 2, 3, 4, 8}) {
    const auto bcsr = to_bcsr(a_, block);
    c_.fill(-1.0);
    spmm_bcsr_serial(bcsr, b_, c_);
    expect_match("bcsr serial");
    c_.fill(-1.0);
    spmm_bcsr_parallel(bcsr, b_, c_, 4);
    expect_match("bcsr omp");
    c_.fill(-1.0);
    spmm_bcsr_parallel_inner(bcsr, b_, c_, 4);
    expect_match("bcsr omp-inner");
    c_.fill(-1.0);
    spmm_bcsr_device(arena_, bcsr, b_, c_);
    expect_match("bcsr gpu");
    c_.fill(-1.0);
    spmm_bcsr_serial_transpose(bcsr, bt_, c_);
    expect_match("bcsr serial-T");
    c_.fill(-1.0);
    spmm_bcsr_parallel_transpose(bcsr, bt_, c_, 4);
    expect_match("bcsr omp-T");
    c_.fill(-1.0);
    spmm_bcsr_device_transpose(arena_, bcsr, bt_, c_);
    expect_match("bcsr gpu-T");
  }
}

TEST_P(SpmmKernelTest, BellAllForms) {
  for (std::int32_t group : {1, 4, 32}) {
    const auto bell = to_bell(a_, group);
    c_.fill(-1.0);
    spmm_bell_serial(bell, b_, c_);
    expect_match("bell serial");
    c_.fill(-1.0);
    spmm_bell_parallel(bell, b_, c_, 4);
    expect_match("bell omp");
    c_.fill(-1.0);
    spmm_bell_device(arena_, bell, b_, c_);
    expect_match("bell gpu");
  }
}

TEST_P(SpmmKernelTest, SellCAllForms) {
  const auto sell = to_sellc(a_, 8, 32);
  spmm_sellc_serial(sell, b_, c_);
  expect_match("sellc serial");
  c_.fill(-1.0);
  spmm_sellc_parallel(sell, b_, c_, 4);
  expect_match("sellc omp");
  c_.fill(-1.0);
  spmm_sellc_device(arena_, sell, b_, c_);
  expect_match("sellc gpu");
}

INSTANTIATE_TEST_SUITE_P(
    Matrices, SpmmKernelTest,
    ::testing::Values(
        KernelCase{"tiny_k1", 7, 2.0, gen::Placement::kScattered, 1},
        KernelCase{"scattered_k8", 64, 5.0, gen::Placement::kScattered, 8},
        KernelCase{"banded_k16", 96, 6.0, gen::Placement::kBanded, 16},
        KernelCase{"clustered_k5", 80, 8.0, gen::Placement::kClustered, 5},
        KernelCase{"nondividing_k3", 61, 4.0, gen::Placement::kClustered, 3},
        KernelCase{"wide_k33", 40, 6.0, gen::Placement::kScattered, 33}),
    [](const auto& info) { return info.param.name; });

// --- degenerate shapes ---

TEST(ProbeVerification, AcceptsCorrectAndRejectsWrong) {
  const CooD a = testutil::random_coo(120, 100, 6.0, 77);
  Rng rng(8);
  Dense<double> b(static_cast<usize>(a.cols()), 16);
  b.fill_random(rng);
  Dense<double> c = spmm_reference(a, b);
  // Correct product: probe error at rounding level.
  EXPECT_LT(spmm_probe_error(a, b, c), 1e-9);
  // One corrupted element: the probe must notice.
  c.at(57, 3) += 0.5;
  EXPECT_GT(spmm_probe_error(a, b, c), 1e-3);
  // A subtly-scaled column too.
  Dense<double> c2 = spmm_reference(a, b);
  for (usize i = 0; i < c2.rows(); ++i) c2.at(i, 7) *= 1.0 + 1e-4;
  EXPECT_GT(spmm_probe_error(a, b, c2), 1e-7);
}

TEST(SpmmKernelEdge, EmptyMatrixYieldsZeroC) {
  CooD a(5, 6);
  Dense<double> b(6, 4);
  Rng rng(1);
  b.fill_random(rng);
  Dense<double> c(5, 4);
  c.fill(9.0);
  spmm_coo_serial(a, b, c);
  for (usize i = 0; i < c.size(); ++i) ASSERT_EQ(c.data()[i], 0.0);

  const auto csr = to_csr(a);
  c.fill(9.0);
  spmm_csr_serial(csr, b, c);
  for (usize i = 0; i < c.size(); ++i) ASSERT_EQ(c.data()[i], 0.0);
}

TEST(SpmmKernelEdge, SingleRowMatrix) {
  AlignedVector<std::int32_t> r = {0, 0};
  AlignedVector<std::int32_t> c = {1, 3};
  AlignedVector<double> v = {2.0, -3.0};
  CooD a(1, 4, std::move(r), std::move(c), std::move(v));
  Dense<double> b(4, 2);
  for (usize i = 0; i < b.size(); ++i) b.data()[i] = static_cast<double>(i);
  Dense<double> out(1, 2);
  spmm_csr_serial(to_csr(a), b, out);
  // row = 2*B[1,:] - 3*B[3,:] = 2*(2,3) - 3*(6,7).
  EXPECT_DOUBLE_EQ(out.at(0, 0), 2 * 2.0 - 3 * 6.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 2 * 3.0 - 3 * 7.0);
}

TEST(SpmmKernelEdge, ShapeMismatchThrows) {
  const CooD a = testutil::small_coo();
  Dense<double> b(3, 4);  // wrong: needs 4 rows
  Dense<double> c(4, 4);
  EXPECT_THROW(spmm_coo_serial(a, b, c), Error);
  Dense<double> b_ok(4, 4);
  Dense<double> c_bad(4, 3);  // wrong width
  EXPECT_THROW(spmm_coo_serial(a, b_ok, c_bad), Error);
}

// The shape checks must throw spmm::Error whose what() leads with the
// throw site's file:line — the property diagnostics and bug reports rely
// on (support/error.hpp prepends it via SPMM_CHECK).
TEST(SpmmKernelEdge, ShapeErrorsCarryFileLinePrefix) {
  const CooD a = testutil::small_coo();
  const auto expect_prefixed = [](const auto& fn, const char* msg) {
    try {
      fn();
      FAIL() << "expected spmm::Error for " << msg;
    } catch (const Error& e) {
      const std::string what = e.what();
      const auto colon = what.find(':');
      ASSERT_NE(colon, std::string::npos) << what;
      EXPECT_NE(what.find("spmm_common.hpp"), std::string::npos) << what;
      // file:line: message — the line number parses as a positive int.
      const auto line_end = what.find(':', colon + 1);
      ASSERT_NE(line_end, std::string::npos) << what;
      EXPECT_GT(std::stoi(what.substr(colon + 1, line_end - colon - 1)), 0)
          << what;
      EXPECT_NE(what.find(msg), std::string::npos) << what;
    }
  };

  Dense<double> b_bad(3, 4), c_ok(4, 4);
  expect_prefixed(
      [&] { check_spmm_shapes(a.rows(), a.cols(), b_bad, c_ok); },
      "SpMM: B must have A.cols rows");
  Dense<double> b_ok(4, 4), c_bad_rows(3, 4);
  expect_prefixed(
      [&] { check_spmm_shapes(a.rows(), a.cols(), b_ok, c_bad_rows); },
      "SpMM: C must have A.rows rows");
  Dense<double> c_bad_width(4, 3);
  expect_prefixed(
      [&] { check_spmm_shapes(a.rows(), a.cols(), b_ok, c_bad_width); },
      "SpMM: B and C must have equal width");

  Dense<double> bt_bad(4, 3);  // wrong: needs a.cols() = 4 columns
  expect_prefixed(
      [&] { check_spmm_shapes_transpose(a.rows(), a.cols(), bt_bad, c_ok); },
      "SpMM-T: Bt must have A.cols columns");
  Dense<double> bt_ok(4, 4);
  expect_prefixed(
      [&] {
        check_spmm_shapes_transpose(a.rows(), a.cols(), bt_ok, c_bad_rows);
      },
      "SpMM-T: C must have A.rows rows");
  Dense<double> c_bad_k(4, 5);
  expect_prefixed(
      [&] { check_spmm_shapes_transpose(a.rows(), a.cols(), bt_ok, c_bad_k); },
      "SpMM-T: Bt height and C width must match");
}

TEST(SpmmKernelEdge, NonPositiveThreadsThrow) {
  const CooD a = testutil::small_coo();
  Dense<double> b(4, 4);
  Dense<double> c(4, 4);
  EXPECT_THROW(spmm_coo_parallel(a, b, c, 0), Error);
  EXPECT_THROW(spmm_csr_parallel(to_csr(a), b, c, -2), Error);
}

TEST(SpmmKernelEdge, MoreThreadsThanRows) {
  const CooD a = testutil::random_coo(6, 6, 3.0, 55);
  Dense<double> b(6, 4);
  Rng rng(2);
  b.fill_random(rng);
  Dense<double> c(6, 4);
  const auto expected = spmm_reference(a, b);
  spmm_coo_parallel(a, b, c, 64);
  EXPECT_LE(max_abs_diff(expected, c), kTol);
  spmm_csr_parallel(to_csr(a), b, c, 64);
  EXPECT_LE(max_abs_diff(expected, c), kTol);
}

}  // namespace
}  // namespace spmm
