// Tests for the benchmark core: the SpmmBenchmark run loop, verification,
// the format benchmark classes, the thread sweep (Study 3.1), and the
// user-extension path the paper's design exists for.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "test_util.hpp"

namespace spmm::bench {
namespace {

using testutil::CooD;

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 2;
  p.warmup = 1;
  p.threads = 3;
  p.block_size = 4;
  p.k = k;
  return p;
}

TEST(Benchmark, ResultFieldsPopulated) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 1);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, fast_params(), "m60");
  EXPECT_EQ(r.kernel_name, "CSR");
  EXPECT_EQ(r.matrix_name, "m60");
  EXPECT_EQ(r.variant, Variant::kSerial);
  EXPECT_EQ(r.threads, 1);  // serial run reports one thread
  EXPECT_EQ(r.k, 8);
  EXPECT_GT(r.avg_compute_seconds, 0.0);
  EXPECT_GE(r.avg_compute_seconds, r.min_compute_seconds);
  EXPECT_GT(r.format_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.flops, 2.0 * static_cast<double>(m.nnz()) * 8.0);
  EXPECT_NEAR(r.mflops, r.flops / r.avg_compute_seconds / 1e6, 1e-6);
  EXPECT_TRUE(r.verification_run);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.properties.nnz, static_cast<std::int64_t>(m.nnz()));
  EXPECT_GE(r.total_seconds, r.format_seconds);
}

class AllFormatsVariantsTest
    : public ::testing::TestWithParam<std::tuple<Format, Variant>> {};

TEST_P(AllFormatsVariantsTest, RunsAndVerifies) {
  const auto [format, variant] = GetParam();
  // The extension formats ship serial/parallel/device only; CSR5 ships
  // serial/parallel.
  if ((format == Format::kBell || format == Format::kSellC ||
       format == Format::kHyb) &&
      variant_is_transpose(variant)) {
    GTEST_SKIP();
  }
  if (format == Format::kCsr5 &&
      !(variant == Variant::kSerial || variant == Variant::kParallel)) {
    GTEST_SKIP();
  }
  const CooD m = testutil::random_coo(80, 80, 6.0, 2,
                                      gen::Placement::kClustered);
  const BenchResult r = run_benchmark<double, std::int32_t>(
      format, variant, m, fast_params(), "m80");
  EXPECT_TRUE(r.verified) << format_name(format) << "/"
                          << variant_name(variant) << " err "
                          << r.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllFormatsVariantsTest,
    ::testing::Combine(::testing::ValuesIn(kAllFormats),
                       ::testing::ValuesIn(kAllVariants)),
    [](const auto& info) {
      std::string s = std::string(format_name(std::get<0>(info.param))) +
                      "_" +
                      std::string(variant_name(std::get<1>(info.param)));
      // gtest parameter names must be alphanumeric.
      std::erase_if(s, [](char c) { return c == '-'; });
      return s;
    });

TEST(Benchmark, OptimizedKernelsVerify) {
  const CooD m = testutil::random_coo(70, 70, 5.0, 3);
  for (Format f : {Format::kCoo, Format::kCsr, Format::kEll}) {
    for (Variant v : {Variant::kSerial, Variant::kParallel}) {
      const BenchResult r = run_benchmark<double, std::int32_t>(
          f, v, m, fast_params(), "m70", /*optimized=*/true);
      EXPECT_TRUE(r.verified) << format_name(f);
      EXPECT_NE(r.kernel_name.find("-opt"), std::string::npos);
    }
  }
}

TEST(Benchmark, OptimizedBcsrRejected) {
  EXPECT_THROW((make_benchmark<double, std::int32_t>(Format::kBcsr, true)),
               Error);
}

TEST(Benchmark, VendorBenchmarkVerifies) {
  const CooD m = testutil::random_coo(70, 70, 5.0, 4);
  for (Format f : {Format::kCoo, Format::kCsr}) {
    VendorBenchmark<double, std::int32_t> bench(f);
    bench.setup(m, fast_params(), "m70");
    const BenchResult r = bench.run(Variant::kParallel);
    EXPECT_TRUE(r.verified);
  }
  EXPECT_THROW((VendorBenchmark<double, std::int32_t>(Format::kEll)), Error);
}

// A deliberately broken kernel: verification must catch it (the paper's
// §4.3 verification function exists precisely for new formats).
template <ValueType V, IndexType I>
class BrokenBenchmark final : public SpmmBenchmark<V, I> {
 public:
  [[nodiscard]] std::string name() const override { return "broken"; }

 protected:
  void do_compute(Variant) override { this->c_.fill(V{1}); }
};

/// Subtler breakage for the probe test: correct result, one element off.
class BrokenProbeTarget final
    : public SpmmBenchmark<double, std::int32_t> {
 public:
  [[nodiscard]] std::string name() const override { return "off-by-one"; }

 protected:
  void do_compute(Variant) override {
    const Dense<double> ref = spmm_reference(coo_, b_);
    c_ = ref;
    c_.at(0, 0) += 1.0;
  }
};

TEST(Benchmark, VerificationCatchesWrongResults) {
  const CooD m = testutil::random_coo(30, 30, 4.0, 5);
  BrokenBenchmark<double, std::int32_t> bench;
  bench.setup(m, fast_params(), "broken");
  const BenchResult r = bench.run(Variant::kSerial);
  EXPECT_TRUE(r.verification_run);
  EXPECT_FALSE(r.verified);
  EXPECT_GT(r.max_abs_error, 0.0);
}

TEST(Benchmark, ProbeVerificationPassesAndCatchesErrors) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 12);
  BenchParams p = fast_params();
  p.verify_probe = true;
  const BenchResult good = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "probe");
  EXPECT_TRUE(good.verification_run);
  EXPECT_TRUE(good.verified);

  BrokenProbeTarget bench;
  bench.setup(m, p, "probe-broken");
  const BenchResult bad = bench.run(Variant::kSerial);
  EXPECT_FALSE(bad.verified);
}

TEST(Benchmark, VerificationCanBeDisabled) {
  const CooD m = testutil::random_coo(30, 30, 4.0, 6);
  BenchParams p = fast_params();
  p.verify = false;
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m30");
  EXPECT_FALSE(r.verification_run);
  EXPECT_FALSE(r.verified);
}

// A user-defined format extension, as §4.1 advertises: diagonal-storage
// format good for banded matrices. Reimplements format + compute only.
template <ValueType V, IndexType I>
class DiagonalBenchmark final : public SpmmBenchmark<V, I> {
 public:
  [[nodiscard]] std::string name() const override { return "DIA-ext"; }

 protected:
  void do_format() override {
    // Collect present diagonals (offset = col - row).
    offsets_.clear();
    diag_values_.clear();
    std::map<I, usize> index;
    for (usize i = 0; i < this->coo_.nnz(); ++i) {
      const I off = this->coo_.col(i) - this->coo_.row(i);
      if (index.try_emplace(off, index.size()).second) {
        offsets_.push_back(off);
      }
    }
    std::sort(offsets_.begin(), offsets_.end());
    index.clear();
    for (usize d = 0; d < offsets_.size(); ++d) index[offsets_[d]] = d;
    diag_values_.assign(
        offsets_.size() * static_cast<usize>(this->coo_.rows()), V{0});
    for (usize i = 0; i < this->coo_.nnz(); ++i) {
      const usize d = index[this->coo_.col(i) - this->coo_.row(i)];
      diag_values_[d * static_cast<usize>(this->coo_.rows()) +
                   static_cast<usize>(this->coo_.row(i))] = this->coo_.value(i);
    }
  }

  [[nodiscard]] std::size_t do_format_bytes() const override {
    return offsets_.size() * sizeof(I) + diag_values_.size() * sizeof(V);
  }

  void do_compute(Variant) override {
    const usize k = this->b_.cols();
    const usize rows = static_cast<usize>(this->coo_.rows());
    this->c_.fill(V{0});
    for (usize d = 0; d < offsets_.size(); ++d) {
      const I off = offsets_[d];
      for (usize r = 0; r < rows; ++r) {
        const V v = diag_values_[d * rows + r];
        if (v == V{0}) continue;
        const usize col = static_cast<usize>(static_cast<I>(r) + off);
        for (usize j = 0; j < k; ++j) {
          this->c_.at(r, j) += v * this->b_.at(col, j);
        }
      }
    }
  }

 private:
  std::vector<I> offsets_;
  std::vector<V> diag_values_;
};

TEST(Benchmark, UserExtensionFormatVerifies) {
  const CooD m =
      testutil::random_coo(90, 90, 5.0, 7, gen::Placement::kBanded);
  DiagonalBenchmark<double, std::int32_t> bench;
  bench.setup(m, fast_params(), "banded");
  const BenchResult r = bench.run(Variant::kSerial);
  EXPECT_EQ(r.kernel_name, "DIA-ext");
  EXPECT_TRUE(r.verified) << r.max_abs_error;
}

TEST(ThreadSweep, PicksBestAndReportsSeries) {
  const CooD m = testutil::random_coo(100, 100, 6.0, 8);
  BenchParams p = fast_params();
  p.thread_list = {1, 2, 4};
  const ThreadSweepResult sweep = thread_sweep<double, std::int32_t>(
      Format::kCsr, m, p, "m100");
  ASSERT_EQ(sweep.series.size(), 3u);
  EXPECT_EQ(sweep.series[0].first, 1);
  EXPECT_EQ(sweep.series[2].first, 4);
  EXPECT_GT(sweep.best_threads, 0);
  for (const auto& [t, mflops] : sweep.series) {
    EXPECT_LE(mflops, sweep.best_mflops);
  }
  EXPECT_TRUE(sweep.best.verified);
}

TEST(ThreadSweep, EmptyListThrows) {
  const CooD m = testutil::random_coo(10, 10, 2.0, 9);
  BenchParams p = fast_params();
  EXPECT_THROW((thread_sweep<double, std::int32_t>(Format::kCsr, m, p)),
               Error);
}

TEST(ThreadSweep, DegenerateRatesFallBackToFirstEntry) {
  // An empty matrix yields 0 FLOPs, hence 0 MFLOPs at every thread
  // count. The sweep must still return the first series entry as the
  // best rather than best_threads == 0 with a default-constructed
  // result.
  const CooD m(8, 8);
  BenchParams p = fast_params();
  p.thread_list = {2, 4};
  const ThreadSweepResult sweep = thread_sweep<double, std::int32_t>(
      Format::kCsr, m, p, "empty");
  ASSERT_EQ(sweep.series.size(), 2u);
  EXPECT_EQ(sweep.best_threads, 2);
  EXPECT_EQ(sweep.best_mflops, 0.0);
  EXPECT_EQ(sweep.best.kernel_name, "CSR");
  EXPECT_EQ(sweep.best.matrix_name, "empty");
  EXPECT_TRUE(sweep.best.verification_run);
}

/// Counts do_format() invocations: the format-once regression guard.
template <ValueType V, IndexType I>
class CountingBenchmark final : public SpmmBenchmark<V, I> {
 public:
  int format_calls = 0;

 protected:
  void do_format() override { ++format_calls; }
};

TEST(Lifecycle, FormatRunsOnceAcrossVariantRuns) {
  const CooD m = testutil::random_coo(50, 50, 4.0, 21);
  CountingBenchmark<double, std::int32_t> bench;
  bench.setup(m, fast_params(), "count");
  EXPECT_FALSE(bench.is_formatted());

  const BenchResult serial = bench.run(Variant::kSerial);
  const BenchResult parallel = bench.run(Variant::kParallel);
  const BenchResult transpose = bench.run(Variant::kSerialTranspose);
  EXPECT_EQ(bench.format_calls, 1);
  EXPECT_TRUE(bench.is_formatted());
  EXPECT_FALSE(serial.format_cached);
  EXPECT_TRUE(parallel.format_cached);
  EXPECT_TRUE(transpose.format_cached);
  // Reused runs echo the one-and-only measured formatting time.
  EXPECT_EQ(parallel.format_seconds, serial.format_seconds);
  EXPECT_EQ(transpose.format_seconds, serial.format_seconds);
}

TEST(Lifecycle, FormatRunsOncePerThreadSweep) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 22);
  CountingBenchmark<double, std::int32_t> bench;
  BenchParams p = fast_params();
  p.thread_list = {1, 2, 4};
  bench.setup(m, p, "count");

  const ThreadSweepResult sweep = thread_sweep(bench);
  ASSERT_EQ(sweep.series.size(), 3u);
  EXPECT_EQ(bench.format_calls, 1);
  EXPECT_EQ(sweep.format_seconds, bench.format_seconds());
  // The sweep's threads mutation must not leak out of the sweep.
  EXPECT_EQ(bench.params().threads, p.threads);
  // Follow-up runs on the same instance keep reusing the conversion.
  EXPECT_TRUE(bench.run(Variant::kSerial).format_cached);
  EXPECT_EQ(bench.format_calls, 1);
}

TEST(Lifecycle, ReformatRetimesAndSetupInvalidates) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 23);
  CountingBenchmark<double, std::int32_t> bench;
  bench.setup(m, fast_params(), "count");
  EXPECT_FALSE(bench.run(Variant::kSerial).format_cached);
  EXPECT_EQ(bench.format_calls, 1);

  bench.reformat();
  EXPECT_EQ(bench.format_calls, 2);
  EXPECT_TRUE(bench.run(Variant::kSerial).format_cached);
  EXPECT_EQ(bench.format_calls, 2);

  // setup() is the other cache invalidation point.
  bench.setup(m, fast_params(), "count");
  EXPECT_FALSE(bench.is_formatted());
  EXPECT_FALSE(bench.run(Variant::kSerial).format_cached);
  EXPECT_EQ(bench.format_calls, 3);
}

TEST(Lifecycle, TransposeOperandRebuiltAfterSetup) {
  const CooD m = testutil::random_coo(50, 50, 4.0, 24);
  CsrBenchmark<double, std::int32_t> bench;
  BenchParams p = fast_params();
  bench.setup(m, p, "bt");
  EXPECT_TRUE(bench.run(Variant::kSerialTranspose).verified);

  // A different seed regenerates B; a stale Bᵀ would fail verification.
  p.seed = 7;
  bench.setup(m, p, "bt");
  EXPECT_TRUE(bench.run(Variant::kSerialTranspose).verified);
}

TEST(Lifecycle, ZeroIterationsRejectedAtRunTime) {
  const CooD m = testutil::random_coo(20, 20, 3.0, 25);
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  BenchParams p = fast_params();
  p.iterations = 0;  // constructed directly, bypassing from_parser
  bench->setup(m, p, "bad");
  EXPECT_THROW(bench->run(Variant::kSerial), Error);
  p.iterations = 1;
  p.warmup = -1;
  bench->setup(m, p, "bad");
  EXPECT_THROW(bench->run(Variant::kSerial), Error);
}

TEST(RunPlan, FormatsOnceAndRetargetsThreadsAndK) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 26);
  CountingBenchmark<double, std::int32_t> bench;
  // This test is about plan retargeting, not the min-work guard: the
  // matrix is tiny, so leave the guard off to keep the parallel cell
  // actually parallel (test_isa covers the fallback itself).
  BenchParams p = fast_params();
  p.min_parallel_work = 0;
  bench.setup(m, p, "plan");
  const std::vector<PlanCell> plan = {
      {Variant::kSerial, 0, 0},
      {Variant::kParallel, 2, 0},
      {Variant::kSerial, 0, 16},
  };
  const auto results = run_plan(bench, plan);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(bench.format_calls, 1);
  // ensure_formatted() ran before the first cell, so even it is cached.
  EXPECT_TRUE(results[0].format_cached);
  EXPECT_TRUE(results[2].format_cached);
  EXPECT_EQ(results[1].threads, 2);
  EXPECT_EQ(results[2].k, 16);
  EXPECT_DOUBLE_EQ(results[2].flops,
                   2.0 * static_cast<double>(m.nnz()) * 16.0);
  for (const auto& r : results) EXPECT_TRUE(r.verified);
}

TEST(RunPlan, MatchesPerCallRunBenchmark) {
  const CooD m = testutil::random_coo(70, 70, 5.0, 27);
  const BenchParams p = fast_params();
  const std::vector<PlanCell> plan = {
      {Variant::kSerial, 0, 0},
      {Variant::kParallel, 0, 0},
      {Variant::kSerial, 0, 16},
  };
  const auto planned = run_plan<double, std::int32_t>(
      Format::kCsr, m, p, plan, "plan");

  BenchParams p16 = p;
  p16.k = 16;
  const BenchResult singles[] = {
      run_benchmark<double, std::int32_t>(Format::kCsr, Variant::kSerial, m,
                                          p, "plan"),
      run_benchmark<double, std::int32_t>(Format::kCsr, Variant::kParallel,
                                          m, p, "plan"),
      run_benchmark<double, std::int32_t>(Format::kCsr, Variant::kSerial, m,
                                          p16, "plan"),
  };
  ASSERT_EQ(planned.size(), std::size(singles));
  for (std::size_t i = 0; i < planned.size(); ++i) {
    // Deterministic fields must match the one-shot path bit-for-bit:
    // set_k() regenerates B from the same seed a fresh setup() uses.
    EXPECT_EQ(planned[i].kernel_name, singles[i].kernel_name);
    EXPECT_EQ(planned[i].variant, singles[i].variant);
    EXPECT_EQ(planned[i].threads, singles[i].threads);
    EXPECT_EQ(planned[i].k, singles[i].k);
    EXPECT_EQ(planned[i].flops, singles[i].flops);
    EXPECT_EQ(planned[i].format_bytes, singles[i].format_bytes);
    EXPECT_EQ(planned[i].verified, singles[i].verified);
    EXPECT_EQ(planned[i].max_abs_error, singles[i].max_abs_error);
    EXPECT_EQ(planned[i].properties.nnz, singles[i].properties.nnz);
  }
}

TEST(Benchmark, DeviceMemoryCapEnforced) {
  // Study 7's dropout: a device run whose operands exceed the emulated
  // device capacity throws DeviceOutOfMemory.
  const CooD m = testutil::random_coo(200, 200, 8.0, 10);
  BenchParams p = fast_params(32);
  p.device_memory_bytes = 16 * 1024;  // far too small
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(m, p, "capped");
  EXPECT_THROW(bench->run(Variant::kDevice), dev::DeviceOutOfMemory);
  // CPU variants are unaffected by the cap.
  EXPECT_TRUE(bench->run(Variant::kSerial).verified);
  // A generous cap lets the device run proceed.
  p.device_memory_bytes = 64 * 1024 * 1024;
  bench->setup(m, p, "capped");
  EXPECT_TRUE(bench->run(Variant::kDevice).verified);
}

TEST(Benchmark, DebugFlagPrintsIterationTimings) {
  const CooD m = testutil::random_coo(20, 20, 3.0, 11);
  BenchParams p = fast_params();
  p.debug = true;
  p.iterations = 2;
  testing::internal::CaptureStderr();
  run_benchmark<double, std::int32_t>(Format::kCoo, Variant::kSerial, m, p,
                                      "dbg");
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[debug] COO/serial iteration 0"), std::string::npos);
  EXPECT_NE(err.find("iteration 1"), std::string::npos);
}

TEST(Benchmark, RunBeforeSetupThrows) {
  CsrBenchmark<double, std::int32_t> bench;
  EXPECT_THROW(bench.run(Variant::kSerial), Error);
}

TEST(Benchmark, FloatValueTypeVerifies) {
  gen::MatrixSpec spec;
  spec.name = "f32";
  spec.rows = spec.cols = 50;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.mean = 4;
  spec.row_dist.max_nnz = 8;
  spec.placement.kind = gen::Placement::kScattered;
  const auto m = gen::generate<float, std::int32_t>(spec);
  auto bench = make_benchmark<float, std::int32_t>(Format::kCsr);
  bench->setup(m, fast_params(), "f32");
  EXPECT_TRUE(bench->run(Variant::kSerial).verified);
}

}  // namespace
}  // namespace spmm::bench
