// Tests for spmm::resilience: the typed error taxonomy, the
// deterministic fault injector, the hardened run() harness (retry,
// degradation ladder, cell deadline watchdog), and the run_plan /
// thread_sweep cell isolation under --on-error=continue.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "core/runner.hpp"
#include "devsim/device.hpp"
#include "io/matrix_market.hpp"
#include "resilience/errors.hpp"
#include "resilience/fault_injector.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace spmm::bench {
namespace {

using resilience::FaultInjector;
using testutil::CooD;

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 2;
  p.warmup = 1;
  p.threads = 2;
  p.block_size = 4;
  p.k = k;
  p.verify = false;
  return p;
}

double counter_total(const telemetry::MemorySink& sink,
                     const std::string& name) {
  double total = 0.0;
  for (const telemetry::Event& e : sink.events()) {
    if (e.kind == telemetry::EventKind::kCounter && e.name == name) {
      total += e.value;
    }
  }
  return total;
}

// ---------------------------------------------------------------- taxonomy

TEST(Taxonomy, CodesAreStable) {
  EXPECT_EQ(resilience::InputError("x").error_code(), "input.invalid");
  EXPECT_EQ(resilience::InputError("input.truncated", "x").error_code(),
            "input.truncated");
  EXPECT_EQ(resilience::FormatError("x").error_code(), "format.failed");
  EXPECT_EQ(resilience::KernelError("x").error_code(), "kernel.failed");
  EXPECT_EQ(resilience::TimeoutError("x").error_code(), "timeout.cell");
  EXPECT_EQ(dev::DeviceOutOfMemory("x").error_code(), "dev.oom");
  EXPECT_EQ(Error("x").error_code(), "error");
}

TEST(Taxonomy, ClassifyMapsExceptionsToCodes) {
  const resilience::TimeoutError timeout("t");
  EXPECT_EQ(resilience::classify(timeout), "timeout.cell");
  const dev::DeviceOutOfMemory oom("o");
  EXPECT_EQ(resilience::classify(oom), "dev.oom");
  const std::runtime_error other("boom");
  EXPECT_EQ(resilience::classify(other), "internal.unexpected");
}

TEST(Taxonomy, TimeoutIsNeverTransient) {
  EXPECT_FALSE(resilience::TimeoutError("t").transient());
  EXPECT_TRUE(resilience::KernelError("k", "x", true).transient());
}

// ------------------------------------------------------------- fault plans

TEST(FaultPlan, EmptyPlanMeansNoInjector) {
  EXPECT_EQ(FaultInjector::parse(""), nullptr);
  EXPECT_EQ(FaultInjector::parse("   "), nullptr);
}

TEST(FaultPlan, UnknownSiteRejected) {
  try {
    FaultInjector::parse("dev.alloc.fial@1");
    FAIL() << "expected InputError";
  } catch (const resilience::InputError& e) {
    EXPECT_EQ(e.error_code(), "input.faultplan");
  }
}

TEST(FaultPlan, BadGrammarRejected) {
  EXPECT_THROW(FaultInjector::parse("dev.alloc.fail"), resilience::InputError);
  EXPECT_THROW(FaultInjector::parse("dev.alloc.fail@"),
               resilience::InputError);
  EXPECT_THROW(FaultInjector::parse("dev.alloc.fail@x"),
               resilience::InputError);
  EXPECT_THROW(FaultInjector::parse("dev.alloc.fail@rate=2.0"),
               resilience::InputError);
  EXPECT_THROW(FaultInjector::parse("dev.alloc.fail@1;dev.alloc.fail@2"),
               resilience::InputError);
}

TEST(FaultPlan, NthTriggerFiresExactlyOnce) {
  auto inj = FaultInjector::parse("dev.alloc.fail@3");
  ASSERT_NE(inj, nullptr);
  EXPECT_TRUE(inj->armed("dev.alloc.fail"));
  EXPECT_FALSE(inj->armed("h2d.corrupt"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj->should_fire("dev.alloc.fail"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(inj->hits("dev.alloc.fail"), 6u);
  EXPECT_EQ(inj->fires("dev.alloc.fail"), 1u);
  // Unarmed sites never fire and are not counted.
  EXPECT_FALSE(inj->should_fire("h2d.corrupt"));
  EXPECT_EQ(inj->hits("h2d.corrupt"), 0u);
}

TEST(FaultPlan, RateTriggerIsDeterministicPerSeed) {
  auto a = FaultInjector::parse("h2d.corrupt@rate=0.3", 7);
  auto b = FaultInjector::parse("h2d.corrupt@rate=0.3", 7);
  std::vector<bool> fa, fb;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a->should_fire("h2d.corrupt"));
    fb.push_back(b->should_fire("h2d.corrupt"));
  }
  EXPECT_EQ(fa, fb);
  // ~0.3 of 200 hits should fire; a huge tolerance keeps this exact for
  // any reasonable mixer while still catching always/never bugs.
  EXPECT_GT(a->fires("h2d.corrupt"), 20u);
  EXPECT_LT(a->fires("h2d.corrupt"), 140u);
}

TEST(FaultPlan, ParamsAndPickAreExposed) {
  auto inj = FaultInjector::parse("cell.stall@1,ms=250;dev.launch.stall@2");
  EXPECT_DOUBLE_EQ(inj->param("cell.stall", "ms", 100.0), 250.0);
  EXPECT_DOUBLE_EQ(inj->param("dev.launch.stall", "ms", 50.0), 50.0);
  const std::size_t i = inj->pick("cell.stall", 16);
  EXPECT_LT(i, 16u);
  EXPECT_EQ(inj->pick("cell.stall", 16), i);  // same fire count -> same pick
}

TEST(FaultPlan, GlobalInjectorScoping) {
  EXPECT_EQ(FaultInjector::global(), nullptr);
  {
    FaultInjector::ScopedGlobal scope(FaultInjector::parse("io.truncate@1"));
    ASSERT_NE(FaultInjector::global(), nullptr);
    EXPECT_TRUE(FaultInjector::global()->armed("io.truncate"));
  }
  EXPECT_EQ(FaultInjector::global(), nullptr);
}

// -------------------------------------------------- arena injection sites

TEST(ArenaFaults, NthAllocThrowsAndLeavesArenaConsistent) {
  dev::DeviceArena arena;
  arena.set_fault_injector(FaultInjector::parse("dev.alloc.fail@2"));
  (void)arena.alloc<double>(8);
  const std::size_t before = arena.allocated_bytes();
  EXPECT_EQ(before, 8 * sizeof(double));
  EXPECT_THROW(arena.alloc<double>(8), dev::DeviceOutOfMemory);
  // The failed allocation must not change accounting.
  EXPECT_EQ(arena.allocated_bytes(), before);
  EXPECT_EQ(arena.peak_bytes(), before);
  // The arena keeps working after the fault.
  (void)arena.alloc<double>(4);
  EXPECT_EQ(arena.allocated_bytes(), before + 4 * sizeof(double));
  arena.reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
}

TEST(ArenaFaults, CapacityLimitShrinksArena) {
  dev::DeviceArena arena;  // unlimited
  arena.set_fault_injector(
      FaultInjector::parse("dev.capacity.limit@always,bytes=64"));
  EXPECT_EQ(arena.capacity_bytes(), 64u);
  EXPECT_THROW(arena.alloc<double>(16), dev::DeviceOutOfMemory);
}

TEST(ArenaFaults, H2dCorruptionFlipsExactlyOneByte) {
  dev::DeviceArena arena;
  arena.set_fault_injector(FaultInjector::parse("h2d.corrupt@1"));
  std::vector<double> host(16, 1.0);
  auto buf = arena.alloc<double>(16);
  arena.copy_to_device(buf, host.data(), 16);
  int diffs = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    if (buf.data()[i] != 1.0) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
}

TEST(ArenaFaults, RealOomEmitsCounterAndStaysConsistent) {
  auto sink = std::make_shared<telemetry::MemorySink>();
  dev::DeviceArena arena(64);
  arena.set_telemetry(telemetry::Session(sink));
  (void)arena.alloc<double>(4);
  EXPECT_THROW(arena.alloc<double>(64), dev::DeviceOutOfMemory);
  EXPECT_EQ(arena.allocated_bytes(), 4 * sizeof(double));
  bool saw_oom_log = false;
  for (const telemetry::Event& e : sink->events()) {
    if (e.kind == telemetry::EventKind::kLog && e.name == "dev.oom") {
      saw_oom_log = true;
    }
  }
  EXPECT_TRUE(saw_oom_log);
}

// --------------------------------------------------------- hardened run()

TEST(HardenedRun, CleanPathIsPure) {
  const CooD m = testutil::random_coo(50, 50, 4.0, 3);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;  // policy alone must not change output
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m50");
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.error_code, "");
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.executed_variant, Variant::kSerial);
  EXPECT_GT(r.mflops, 0.0);
}

TEST(HardenedRun, CellStallPlusDeadlineTimesOut) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 4);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.cell_timeout_seconds = 0.05;
  p.faults = FaultInjector::parse("cell.stall@1,ms=200");
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m40");
  EXPECT_EQ(r.status, RunStatus::kTimeout);
  EXPECT_EQ(r.error_code, "timeout.cell");
  EXPECT_EQ(r.attempts, 1);
}

TEST(HardenedRun, TimeoutUnderAbortPolicyThrows) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 4);
  BenchParams p = fast_params();
  p.cell_timeout_seconds = 0.05;
  p.faults = FaultInjector::parse("cell.stall@1,ms=200");
  EXPECT_THROW(
      (run_benchmark<double, std::int32_t>(Format::kCsr, Variant::kSerial, m,
                                           p, "m40")),
      resilience::TimeoutError);
}

TEST(HardenedRun, TransientFailureRetriesAndSucceeds) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 5);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.retries = 2;
  p.retry_backoff_seconds = 0.001;
  p.faults = FaultInjector::parse("cell.fail@1,transient=1");
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m40");
  EXPECT_EQ(r.status, RunStatus::kOk);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_GT(r.mflops, 0.0);
}

TEST(HardenedRun, PersistentFailureExhaustsRetries) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 5);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.retries = 1;
  p.retry_backoff_seconds = 0.001;
  p.faults = FaultInjector::parse("cell.fail@always,transient=1");
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m40");
  EXPECT_EQ(r.status, RunStatus::kFailed);
  EXPECT_EQ(r.error_code, "kernel.injected");
  EXPECT_EQ(r.attempts, 2);  // 1 + retries
}

TEST(HardenedRun, DeviceOomDegradesToHostParallel) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 6);
  auto sink = std::make_shared<telemetry::MemorySink>();
  BenchParams p = fast_params(16);
  p.on_error = OnError::kContinue;
  p.device_memory_bytes = 1024;  // far too small for the operands
  p.sink = sink;
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kDevice, m, p, "m60");
  EXPECT_EQ(r.status, RunStatus::kDegraded);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.variant, Variant::kDevice);           // what was asked for
  EXPECT_EQ(r.executed_variant, Variant::kParallel);  // what actually ran
  EXPECT_EQ(r.error_code, "dev.oom");
  EXPECT_GT(r.mflops, 0.0);
  EXPECT_GE(counter_total(*sink, "cell.degraded"), 1.0);
  EXPECT_GE(counter_total(*sink, "cell.error"), 1.0);
  EXPECT_GE(counter_total(*sink, "cell.error.dev.oom"), 1.0);
}

TEST(HardenedRun, DeviceOomUnderAbortStillThrows) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 6);
  BenchParams p = fast_params(16);
  p.device_memory_bytes = 1024;
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(m, p, "m60");
  EXPECT_THROW(bench->run(Variant::kDevice), dev::DeviceOutOfMemory);
  // The arena must be usable afterwards: a host run still works.
  const BenchResult r = bench->run(Variant::kSerial);
  EXPECT_EQ(r.status, RunStatus::kOk);
}

TEST(HardenedRun, FormatAllocFaultFailsCell) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 7);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.faults = FaultInjector::parse("format.alloc.fail@1");
  auto bench = make_benchmark<double, std::int32_t>(Format::kCsr);
  bench->setup(m, p, "m40");
  const BenchResult r = bench->run(Variant::kSerial);
  EXPECT_EQ(r.status, RunStatus::kFailed);
  EXPECT_EQ(r.error_code, "format.alloc");
}

// --------------------------------------------- plan-level cell isolation

TEST(HardenedPlan, ChaosPlanYieldsOkDegradedAndTimeoutRows) {
  // The acceptance scenario: dev.alloc.fail@2 kills the second device
  // allocation (first device cell degrades to host-parallel) and
  // cell.stall@1 stalls the first cell past a 50 ms deadline (timeout);
  // everything else is ok. The study completes instead of dying.
  const CooD m = testutil::random_coo(60, 60, 5.0, 8);
  BenchParams p = fast_params(16);
  p.on_error = OnError::kContinue;
  p.cell_timeout_seconds = 0.05;
  p.faults = FaultInjector::parse("dev.alloc.fail@2;cell.stall@1,ms=200");
  const std::vector<PlanCell> plan = {
      {Variant::kSerial, 0, 0},    // first cell: stalled -> timeout
      {Variant::kParallel, 2, 0},  // clean -> ok
      {Variant::kDevice, 0, 0},    // 2nd device alloc fails -> degraded
  };
  const auto results =
      run_plan<double, std::int32_t>(Format::kCsr, m, p, plan, "m60");
  ASSERT_EQ(results.size(), 3u);

  EXPECT_EQ(results[0].status, RunStatus::kTimeout);
  EXPECT_EQ(results[0].error_code, "timeout.cell");

  EXPECT_EQ(results[1].status, RunStatus::kOk);
  EXPECT_EQ(results[1].error_code, "");

  EXPECT_EQ(results[2].status, RunStatus::kDegraded);
  EXPECT_EQ(results[2].error_code, "dev.oom");
  EXPECT_EQ(results[2].executed_variant, Variant::kParallel);
  EXPECT_GT(results[2].mflops, 0.0);

  // The CSV records the outcome column with the stable codes.
  std::ostringstream csv;
  write_csv(csv, results);
  const std::string text = csv.str();
  EXPECT_NE(text.find(",status,error_code,attempts"), std::string::npos);
  EXPECT_NE(text.find("timeout,timeout.cell"), std::string::npos);
  EXPECT_NE(text.find("degraded,dev.oom"), std::string::npos);
  EXPECT_NE(text.find(",ok,"), std::string::npos);
}

TEST(HardenedPlan, UnsupportedVariantSkippedUnderContinue) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 9);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  const std::vector<PlanCell> plan = {
      {Variant::kSerial, 0, 0},
      {Variant::kSerialTranspose, 0, 0},  // CSR5 has no transpose kernel
  };
  const auto results =
      run_plan<double, std::int32_t>(Format::kCsr5, m, p, plan, "m40");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, RunStatus::kOk);
  EXPECT_EQ(results[1].status, RunStatus::kSkipped);
  EXPECT_EQ(results[1].error_code, "variant.unsupported");
  EXPECT_EQ(results[1].attempts, 0);
}

TEST(HardenedPlan, AbortPolicyPreservesThrowThrough) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 9);
  BenchParams p = fast_params();  // default kAbort
  const std::vector<PlanCell> plan = {{Variant::kSerialTranspose, 0, 0}};
  EXPECT_THROW(
      (run_plan<double, std::int32_t>(Format::kCsr5, m, p, plan, "m40")),
      Error);
}

TEST(HardenedSweep, FailedPointsScoreZeroAndNeverWin) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 10);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.thread_list = {1, 2};
  // Fail the first sweep point; the second must win.
  p.faults = FaultInjector::parse("cell.fail@1");
  const auto sweep =
      thread_sweep<double, std::int32_t>(Format::kCsr, m, p, "m40");
  ASSERT_EQ(sweep.series.size(), 2u);
  EXPECT_EQ(sweep.series[0].second, 0.0);
  EXPECT_GT(sweep.series[1].second, 0.0);
  EXPECT_EQ(sweep.best_threads, 2);
}

// -------------------------------------------------------- report surface

TEST(Report, StatusTagsPrinted) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 11);
  BenchParams p = fast_params();
  p.on_error = OnError::kContinue;
  p.cell_timeout_seconds = 0.05;
  p.faults = FaultInjector::parse("cell.stall@1,ms=200");
  const BenchResult r = run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "m40");
  std::ostringstream os;
  print_result(os, r);
  EXPECT_NE(os.str().find("[TIMEOUT timeout.cell]"), std::string::npos);
}

// ---------------------------------------------------- io injection sites

TEST(IoFaults, TruncationSiteProducesTruncatedError) {
  const char* mtx =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 2 2.0\n"
      "3 3 3.0\n";
  FaultInjector::ScopedGlobal scope(FaultInjector::parse("io.truncate@2"));
  std::istringstream in(mtx);
  try {
    io::read_matrix_market<double, std::int32_t>(in);
    FAIL() << "expected InputError";
  } catch (const resilience::InputError& e) {
    EXPECT_EQ(e.error_code(), "input.truncated");
  }
}

}  // namespace
}  // namespace spmm::bench
