// Tests for the vendor-library stand-in (Study 7's cuSPARSE role):
// correctness across matrices and widths, the plan API, and the
// performance property Study 7 depends on — the vendor kernel must not
// lose to the suite's plain kernel.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_csr.hpp"
#include "support/timer.hpp"
#include "test_util.hpp"
#include "vendor/vendor_spmm.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

class VendorTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(85, 85, 6.0, 91);
    Rng rng(11);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(GetParam()));
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(GetParam()));
    c_.fill(-5.0);
  }

  CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_P(VendorTest, CsrCorrect) {
  const auto csr = to_csr(a_);
  vendor::vendor_spmm_csr(csr, b_, c_, 3);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(VendorTest, CooCorrect) {
  vendor::vendor_spmm_coo(a_, b_, c_, 3);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(VendorTest, PlanApi) {
  const auto csr = to_csr(a_);
  const auto plan = vendor::SpmmPlan<double, std::int32_t>::make_csr(&csr);
  plan.execute(b_, c_, 2);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);

  const auto coo_plan =
      vendor::SpmmPlan<double, std::int32_t>::make_coo(&a_);
  c_.fill(0.0);
  coo_plan.execute(b_, c_, 2);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

// Widths around the 8-wide panel: below, exact, above, non-multiples.
INSTANTIATE_TEST_SUITE_P(Widths, VendorTest,
                         ::testing::Values(1, 3, 7, 8, 9, 16, 23, 64),
                         [](const auto& info) {
                           return std::string("k").append(std::to_string(info.param));
                         });

TEST(Vendor, OverwritesStaleC) {
  // Vendor CSR writes every C element (no accumulate): empty rows must
  // produce zeros even if C held garbage.
  CooD a(4, 4);
  Dense<double> b(4, 8);
  Rng rng(1);
  b.fill_random(rng);
  Dense<double> c(4, 8);
  c.fill(123.0);
  vendor::vendor_spmm_csr(to_csr(a), b, c, 2);
  for (usize i = 0; i < c.size(); ++i) ASSERT_EQ(c.data()[i], 0.0);
}

TEST(Vendor, NullMatrixRejected) {
  EXPECT_THROW(
      (vendor::SpmmPlan<double, std::int32_t>::make_csr(nullptr)), Error);
}

TEST(Vendor, NotSlowerThanPlainKernel) {
  // Study 7's premise: the vendor kernel is the better-optimized one.
  // Compare serial (threads=1) best-of-5 times on a mid-size matrix.
  const CooD a = testutil::random_coo(3000, 3000, 30.0, 5,
                                      gen::Placement::kClustered);
  const auto csr = to_csr(a);
  Dense<double> b(static_cast<usize>(a.cols()), 64);
  Rng rng(2);
  b.fill_random(rng);
  Dense<double> c(static_cast<usize>(a.rows()), 64);

  auto best_of = [&](auto&& fn) {
    double best = 1e30;
    for (int i = 0; i < 5; ++i) {
      Timer t;
      fn();
      best = std::min(best, t.seconds());
    }
    return best;
  };
  const double plain = best_of([&] { spmm_csr_serial(csr, b, c); });
  const double vend =
      best_of([&] { vendor::vendor_spmm_csr(csr, b, c, 1); });
  // Allow 15% noise headroom; the vendor kernel is usually much faster.
  EXPECT_LT(vend, plain * 1.15);
}

}  // namespace
}  // namespace spmm
