// Tests for the CSV writer and ASCII table renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/report.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace spmm {
namespace {

TEST(Csv, QuoteRules) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"name", "value"});
  w.add("x").add(std::int64_t{3});
  w.end_row();
  w.add("y,z").add(1.5);
  w.end_row();
  EXPECT_EQ(os.str(), "name,value\nx,3\n\"y,z\",1.5\n");
  EXPECT_EQ(w.rows(), 2u);
}

TEST(Csv, RowArityEnforced) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.add("1");
  EXPECT_THROW(w.end_row(), Error);       // too few
  w.add("2");
  EXPECT_THROW(w.add("3"), Error);        // too many
}

TEST(Csv, EmptyHeaderRejected) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), Error);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "mflops"});
  t.add("csr").add(1234.5, 1).end_row();
  t.add("longer-name").add(7.0, 1).end_row();
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        |"), std::string::npos);
  EXPECT_NE(out.find("1234.5"), std::string::npos);
  // Numeric cells right-align: the short number ends at the same column.
  EXPECT_NE(out.find("|    7.0 |"), std::string::npos);
}

TEST(TextTable, ArityEnforced) {
  TextTable t({"a", "b"});
  t.add("1");
  EXPECT_THROW(t.end_row(), Error);
  t.add("2");
  EXPECT_THROW(t.add("3"), Error);
}

// Pins the benchmark CSV header. plot_results.py (and any spreadsheet a
// user built on top of the CSV) reads columns by name and position: the
// original 26 columns must keep their exact order, and new columns may
// only ever be appended at the end. If this test fails, you reordered or
// renamed a column — append instead.
TEST(BenchCsv, HeaderIsPinned) {
  std::ostringstream os;
  bench::write_csv(os, {bench::BenchResult{}});
  const std::string out = os.str();
  const std::string header = out.substr(0, out.find('\n'));
  EXPECT_EQ(header,
            "matrix,kernel,variant,threads,k,block_size,iterations,"
            "mflops,gflops,avg_seconds,min_seconds,format_seconds,"
            "format_cached,total_seconds,flops,format_bytes,verified,"
            "max_abs_error,rows,cols,nnz,max_row_nnz,avg_row_nnz,"
            "column_ratio,row_variance,row_stddev,"
            // Appended by the telemetry PR — distribution + device traffic.
            "p50_seconds,p95_seconds,max_seconds,stddev_seconds,"
            "warmup_drift,outliers,h2d_bytes,d2h_bytes,device_peak_bytes,"
            // Appended by the resilience PR — cell outcome labelling.
            "status,error_code,attempts,"
            // Appended by the scheduling PR — work-distribution policy.
            "sched,"
            // Appended by the SIMD-tier PR — requested/executed ISA and
            // the kernel the min-work guard actually ran.
            "isa,executed_isa,executed_variant,"
            // Appended by the hwprof PR — hardware-counter profile.
            // hw_backend tells a measured zero ("none") from a real one.
            "llc_miss_per_nnz,ipc,measured_bytes,hw_backend");
  // One data row with matching arity must follow.
  EXPECT_NE(out.find('\n'), std::string::npos);
  const std::string row = out.substr(out.find('\n') + 1);
  EXPECT_EQ(std::count(row.begin(), row.end(), ','),
            std::count(header.begin(), header.end(), ','));
}

TEST(TextTable, CountsRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add("x").end_row();
  t.add("y").end_row();
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace spmm
