// Tests for the CSV writer and ASCII table renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace spmm {
namespace {

TEST(Csv, QuoteRules) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"name", "value"});
  w.add("x").add(std::int64_t{3});
  w.end_row();
  w.add("y,z").add(1.5);
  w.end_row();
  EXPECT_EQ(os.str(), "name,value\nx,3\n\"y,z\",1.5\n");
  EXPECT_EQ(w.rows(), 2u);
}

TEST(Csv, RowArityEnforced) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.add("1");
  EXPECT_THROW(w.end_row(), Error);       // too few
  w.add("2");
  EXPECT_THROW(w.add("3"), Error);        // too many
}

TEST(Csv, EmptyHeaderRejected) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), Error);
}

TEST(TextTable, RendersAligned) {
  TextTable t({"name", "mflops"});
  t.add("csr").add(1234.5, 1).end_row();
  t.add("longer-name").add(7.0, 1).end_row();
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        |"), std::string::npos);
  EXPECT_NE(out.find("1234.5"), std::string::npos);
  // Numeric cells right-align: the short number ends at the same column.
  EXPECT_NE(out.find("|    7.0 |"), std::string::npos);
}

TEST(TextTable, ArityEnforced) {
  TextTable t({"a", "b"});
  t.add("1");
  EXPECT_THROW(t.end_row(), Error);
  t.add("2");
  EXPECT_THROW(t.add("3"), Error);
}

TEST(TextTable, CountsRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add("x").end_row();
  t.add("y").end_row();
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace spmm
