// Tests for the synthetic matrix generator: distributions, placement,
// and the generator's structural guarantees.
#include <gtest/gtest.h>

#include "formats/properties.hpp"
#include "gen/distributions.hpp"
#include "gen/placement.hpp"
#include "support/stats.hpp"
#include "test_util.hpp"

namespace spmm::gen {
namespace {

TEST(Distributions, ConstantIsConstant) {
  Rng rng(1);
  RowDistSpec d;
  d.kind = RowDist::kConstant;
  d.mean = 7;
  d.max_nnz = 100;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_row_nnz(d, rng), 7);
  }
}

TEST(Distributions, NormalHitsMeanAndClamps) {
  Rng rng(2);
  RowDistSpec d;
  d.kind = RowDist::kNormal;
  d.mean = 20;
  d.spread = 5;
  d.min_nnz = 1;
  d.max_nnz = 30;
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto n = sample_row_nnz(d, rng);
    ASSERT_GE(n, 1);
    ASSERT_LE(n, 30);
    sum += static_cast<double>(n);
  }
  EXPECT_NEAR(sum / 20000.0, 20.0, 0.5);
}

TEST(Distributions, UniformMeanUnbiased) {
  Rng rng(3);
  RowDistSpec d;
  d.kind = RowDist::kUniform;
  d.mean = 2.5;
  d.spread = 0.5;
  d.max_nnz = 10;
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto n = sample_row_nnz(d, rng);
    ASSERT_GE(n, 2);
    ASSERT_LE(n, 3);
    sum += static_cast<double>(n);
  }
  EXPECT_NEAR(sum / 20000.0, 2.5, 0.05);
}

TEST(Distributions, LogNormalIsRightSkewed) {
  Rng rng(4);
  RowDistSpec d;
  d.kind = RowDist::kLogNormal;
  d.mean = 20;
  d.spread = 0.6;
  d.max_nnz = 1000;
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(sample_row_nnz(d, rng)));
  }
  // Right skew: mean above the log-space median (= d.mean).
  EXPECT_GT(s.mean(), 20.0);
  EXPECT_GT(s.max(), 3 * s.mean());
}

TEST(Distributions, HeavyTailMixture) {
  Rng rng(5);
  RowDistSpec d;
  d.kind = RowDist::kConstant;
  d.mean = 5;
  d.max_nnz = 5000;
  d.heavy_fraction = 0.1;
  d.heavy_min = 1000;
  d.heavy_max = 2000;
  int heavy = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto n = sample_row_nnz(d, rng);
    if (n >= 1000) {
      ++heavy;
      ASSERT_LE(n, 2000);
    } else {
      ASSERT_EQ(n, 5);
    }
  }
  EXPECT_NEAR(heavy / 10000.0, 0.1, 0.02);
}

TEST(Distributions, InvalidSpecThrows) {
  Rng rng(6);
  RowDistSpec d;
  d.mean = 0;
  EXPECT_THROW(sample_row_nnz(d, rng), Error);
  d.mean = 5;
  d.min_nnz = 10;
  d.max_nnz = 5;
  EXPECT_THROW(sample_row_nnz(d, rng), Error);
}

class PlacementTest : public ::testing::TestWithParam<Placement> {};

TEST_P(PlacementTest, DistinctSortedInRange) {
  Rng rng(7);
  PlacementSpec spec;
  spec.kind = GetParam();
  for (std::int64_t count : {1, 5, 50}) {
    const auto cols = place_columns(spec, 10, 100, 100, count, rng);
    ASSERT_EQ(static_cast<std::int64_t>(cols.size()), count);
    for (usize i = 0; i < cols.size(); ++i) {
      ASSERT_GE(cols[i], 0);
      ASSERT_LT(cols[i], 100);
      if (i > 0) {
        ASSERT_LT(cols[i - 1], cols[i]);
      }
    }
  }
}

TEST_P(PlacementTest, FullRowRequestSaturates) {
  Rng rng(8);
  PlacementSpec spec;
  spec.kind = GetParam();
  const auto cols = place_columns(spec, 3, 10, 10, 10, rng);
  ASSERT_EQ(cols.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(cols[static_cast<usize>(i)], i);
}

TEST_P(PlacementTest, CountClampedToCols) {
  Rng rng(9);
  PlacementSpec spec;
  spec.kind = GetParam();
  const auto cols = place_columns(spec, 0, 4, 4, 99, rng);
  EXPECT_EQ(cols.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PlacementTest,
                         ::testing::Values(Placement::kBanded,
                                           Placement::kClustered,
                                           Placement::kScattered),
                         [](const auto& info) {
                           switch (info.param) {
                             case Placement::kBanded: return "banded";
                             case Placement::kClustered: return "clustered";
                             default: return "scattered";
                           }
                         });

TEST(Placement, BandedStaysNearDiagonal) {
  Rng rng(10);
  PlacementSpec spec;
  spec.kind = Placement::kBanded;
  spec.bandwidth_frac = 0.02;
  const std::int64_t n = 1000;
  for (std::int64_t row : {100, 500, 900}) {
    const auto cols = place_columns(spec, row, n, n, 10, rng);
    for (std::int64_t c : cols) {
      EXPECT_NEAR(static_cast<double>(c), static_cast<double>(row), 25.0);
    }
  }
}

TEST(Generator, ForcedMaxRowPresent) {
  MatrixSpec spec;
  spec.name = "forced";
  spec.rows = spec.cols = 101;
  spec.row_dist.kind = RowDist::kConstant;
  spec.row_dist.mean = 3;
  spec.row_dist.max_nnz = 40;
  spec.row_dist.force_max_row = true;
  spec.placement.kind = Placement::kScattered;
  const auto m = generate<double, std::int32_t>(spec);
  const auto p = compute_properties(m);
  EXPECT_EQ(p.max_row_nnz, 40);
}

TEST(Generator, NoForcedMaxWhenDisabled) {
  MatrixSpec spec;
  spec.name = "unforced";
  spec.rows = spec.cols = 101;
  spec.row_dist.kind = RowDist::kConstant;
  spec.row_dist.mean = 3;
  spec.row_dist.max_nnz = 40;
  spec.row_dist.force_max_row = false;
  spec.placement.kind = Placement::kScattered;
  const auto m = generate<double, std::int32_t>(spec);
  EXPECT_EQ(compute_properties(m).max_row_nnz, 3);
}

TEST(Generator, ValuesNonZero) {
  const auto m = testutil::random_coo(100, 100, 5.0, 42);
  for (usize i = 0; i < m.nnz(); ++i) {
    ASSERT_NE(m.value(i), 0.0);
    ASSERT_GE(m.value(i), -1.0);
    ASSERT_LT(m.value(i), 1.0);
  }
}

TEST(Generator, RejectsBadShape) {
  MatrixSpec spec;
  spec.rows = 0;
  spec.cols = 10;
  EXPECT_THROW((generate<double, std::int32_t>(spec)), Error);
}

TEST(Generator, RejectsMatrixTooLargeForIndexType) {
  MatrixSpec spec;
  spec.name = "overflow";
  spec.rows = spec.cols = 3'000'000'000;  // exceeds int32
  spec.row_dist.kind = RowDist::kConstant;
  spec.row_dist.mean = 1;
  EXPECT_THROW((generate<double, std::int32_t>(spec)), Error);
}

TEST(Generator, SeedChangesMatrix) {
  MatrixSpec spec;
  spec.name = "seeded";
  spec.rows = spec.cols = 64;
  spec.row_dist.kind = RowDist::kNormal;
  spec.row_dist.mean = 4;
  spec.row_dist.spread = 2;
  spec.row_dist.max_nnz = 10;
  spec.placement.kind = Placement::kScattered;
  spec.seed = 1;
  const auto a = generate<double, std::int32_t>(spec);
  spec.seed = 2;
  const auto b = generate<double, std::int32_t>(spec);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace spmm::gen
