#!/usr/bin/env bash
# Kill/resume chaos harness (docs/ROBUSTNESS.md, "The kill/resume chaos
# harness"). For each seeded kill point the driver is crashed at a
# journal append (exit 137, the kill -9 status), resumed with --resume,
# and the resumed CSV is compared byte-for-byte against an
# uninterrupted reference run. Usage:
#
#   chaos_kill_resume.sh <spmm_bench_cli> <scratch-dir> [kill-spec...]
#
# Default kill matrix: a full-record crash early and late in the
# campaign, plus a torn (half-written) record mid-campaign.
set -u

CLI=$1
SCRATCH=$2
shift 2
KILL_SPECS=("$@")
if [ ${#KILL_SPECS[@]} -eq 0 ]; then
  KILL_SPECS=("journal.crash@2" "journal.crash@5" "journal.torn.tail@3")
fi

# Six deterministic cells: 3 formats x {serial, omp}. --deterministic
# zeroes the timing-derived CSV fields, so the only way two runs differ
# is a replay/identity bug — exactly what this harness hunts.
ARGS=(--matrix bcsstk13 --scale 0.3 --format coo,csr,ell
      --variant serial,omp -n 2 -w 0 -k 16 --deterministic)

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
fail() { echo "chaos_kill_resume: FAIL: $*" >&2; exit 1; }

echo "== reference (uninterrupted) run"
"$CLI" "${ARGS[@]}" --csv "$SCRATCH/ref.csv" \
       --journal "$SCRATCH/ref.jnl" > "$SCRATCH/ref.log" 2>&1 \
  || fail "reference run exited $?"
[ -s "$SCRATCH/ref.csv" ] || fail "reference CSV missing"

for SPEC in "${KILL_SPECS[@]}"; do
  echo "== kill point $SPEC"
  TAG=${SPEC//[@.]/_}
  CSV="$SCRATCH/$TAG.csv"
  JNL="$SCRATCH/$TAG.jnl"
  rm -f "$CSV" "$JNL"

  # Crash run: the injector hard-exits with the kill -9 status at the
  # seeded journal append.
  "$CLI" "${ARGS[@]}" --csv "$CSV" --journal "$JNL" --faults "$SPEC" \
         > "$SCRATCH/$TAG.kill.log" 2>&1
  STATUS=$?
  [ "$STATUS" -eq 137 ] || fail "$SPEC: kill run exited $STATUS, want 137"
  [ -s "$JNL" ] || fail "$SPEC: no journal survived the crash"

  # Resume: replay the journaled cells, run the rest, publish the CSV.
  "$CLI" "${ARGS[@]}" --csv "$CSV" --journal "$JNL" --resume \
         > "$SCRATCH/$TAG.resume.log" 2>&1 \
    || fail "$SPEC: resume exited $?"
  grep -q "replayed .* cell(s) from the journal" "$SCRATCH/$TAG.resume.log" \
    || fail "$SPEC: resume replayed nothing"

  # The contract: resumed CSV == uninterrupted CSV, byte for byte.
  cmp -s "$SCRATCH/ref.csv" "$CSV" || {
    diff "$SCRATCH/ref.csv" "$CSV" | head -10 >&2
    fail "$SPEC: resumed CSV differs from the reference"
  }
  echo "   exit 137 at seeded append, resume ok, CSV byte-identical"
done

echo "chaos_kill_resume: PASS (${#KILL_SPECS[@]} kill points)"
