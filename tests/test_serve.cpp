// spmm::serve unit tests: the SPSC ingress ring (ordering, capacity,
// cross-thread transfer), the sharded formatted-instance LRU cache
// (eviction order, byte budget, singleflight, checksum discipline),
// and the engine's request lifecycle (completion, deadlines,
// admission rejection, shutdown). The threaded cases double as the
// TSan surface for the lock-free queue and the cache's singleflight.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/suite.hpp"
#include "resilience/fault_injector.hpp"
#include "serve/engine.hpp"
#include "serve/instance_cache.hpp"
#include "serve/spsc_queue.hpp"
#include "support/registry.hpp"

namespace spmm::serve {
namespace {

// ---------------------------------------------------------------- SPSC

TEST(SpscQueue, PushPopOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push(v));
  }
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, FullRejectsAndLeavesItemIntact) {
  SpscQueue<std::string> q(4);
  for (int i = 0; i < 4; ++i) {
    std::string s = "item" + std::to_string(i);
    EXPECT_TRUE(q.try_push(s));
  }
  std::string overflow = "survivor";
  EXPECT_FALSE(q.try_push(overflow));
  // A failed push must not have moved the caller's item away.
  EXPECT_EQ(overflow, "survivor");
  EXPECT_EQ(q.size_approx(), 4u);
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  int pushed = 0;
  for (int i = 0; i < 64; ++i) {
    int v = i;
    if (!q.try_push(v)) break;
    ++pushed;
  }
  EXPECT_EQ(pushed, 8);
}

TEST(SpscQueue, WraparoundManyTimes) {
  SpscQueue<int> q(4);
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) {
      int v = round * 3 + i;
      ASSERT_TRUE(q.try_push(v));
    }
    for (int i = 0; i < 3; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 3 + i);
    }
  }
}

// The TSan surface for the ring: one producer thread, one consumer
// thread, every item transferred exactly once and in order.
TEST(SpscQueue, TwoThreadTransferPreservesOrder) {
  constexpr int kItems = 20000;
  SpscQueue<int> q(64);
  std::vector<int> received;
  received.reserve(kItems);

  std::thread consumer([&] {
    while (static_cast<int>(received.size()) < kItems) {
      if (auto v = q.try_pop()) {
        received.push_back(*v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    int v = i;
    while (!q.try_push(v)) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

// --------------------------------------------------------------- cache

BenchParams serve_params() {
  BenchParams p;
  p.iterations = 1;
  p.warmup = 0;
  p.verify = false;
  p.threads = 1;
  p.k = 8;
  return p;
}

InstanceCache::Provider tiny_provider() {
  return [](const std::string& name) {
    return gen::generate<double, std::int32_t>(
        gen::suite_spec(name, 0.05, 42));
  };
}

CacheKey key_for_format(Format f) {
  return CacheKey{"bcsstk13", f, 1, Isa::kAuto};
}

TEST(InstanceCache, HitAfterMiss) {
  InstanceCache cache(std::size_t{1} << 30, 1);
  const CacheKey key = key_for_format(Format::kCsr);
  const auto first = cache.acquire(key, serve_params(), tiny_provider());
  EXPECT_FALSE(first.hit);
  const auto second = cache.acquire(key, serve_params(), tiny_provider());
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.entry.get(), second.entry.get());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.formats, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_in_use, 0u);
}

TEST(InstanceCache, LruOrderTracksUseNotInsertion) {
  InstanceCache cache(std::size_t{1} << 30, 1);
  const CacheKey a = key_for_format(Format::kCsr);
  const CacheKey b = key_for_format(Format::kEll);
  const CacheKey c = key_for_format(Format::kCoo);
  cache.acquire(a, serve_params(), tiny_provider());
  cache.acquire(b, serve_params(), tiny_provider());
  cache.acquire(c, serve_params(), tiny_provider());
  EXPECT_EQ(cache.shard_keys_mru_first(a),
            (std::vector<std::string>{c.str(), b.str(), a.str()}));
  // A hit must promote to MRU.
  cache.acquire(a, serve_params(), tiny_provider());
  EXPECT_EQ(cache.shard_keys_mru_first(a),
            (std::vector<std::string>{a.str(), c.str(), b.str()}));
}

TEST(InstanceCache, ByteBudgetEvictsLeastRecentlyUsed) {
  // Budget far below a single entry: each insert evicts everything
  // older, but the MRU entry itself is never evicted (the cache always
  // serves what it just built).
  InstanceCache cache(1, 1);
  const CacheKey a = key_for_format(Format::kCsr);
  const CacheKey b = key_for_format(Format::kEll);
  cache.acquire(a, serve_params(), tiny_provider());
  cache.acquire(b, serve_params(), tiny_provider());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(cache.shard_keys_mru_first(a),
            (std::vector<std::string>{b.str()}));
  // The evicted key misses again; the resident one still hits.
  EXPECT_FALSE(cache.acquire(a, serve_params(), tiny_provider()).hit);
}

TEST(InstanceCache, ChecksumMismatchIsAMiss) {
  InstanceCache cache(std::size_t{1} << 30, 1);
  const CacheKey key = key_for_format(Format::kCsr);
  cache.acquire(key, serve_params(), tiny_provider());
  cache.corrupt_for_testing(key);
  const auto reloaded = cache.acquire(key, serve_params(), tiny_provider());
  EXPECT_FALSE(reloaded.hit);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.checksum_misses, 1u);
  EXPECT_EQ(stats.formats, 2u);
  EXPECT_EQ(stats.hits, 0u);
  // The rebuilt entry is healthy again.
  EXPECT_TRUE(cache.acquire(key, serve_params(), tiny_provider()).hit);
}

// The TSan surface for singleflight: eight threads race one cold key;
// the matrix is materialized and formatted exactly once and everyone
// shares the same entry.
TEST(InstanceCache, SingleflightFormatsOnce) {
  InstanceCache cache(std::size_t{1} << 30, 1);
  const CacheKey key = key_for_format(Format::kCsr);
  std::atomic<int> provider_calls{0};
  const InstanceCache::Provider counting =
      [&](const std::string& name) {
        provider_calls.fetch_add(1);
        return gen::generate<double, std::int32_t>(
            gen::suite_spec(name, 0.05, 42));
      };

  constexpr int kThreads = 8;
  std::vector<InstanceCache::EntryPtr> entries(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      entries[i] = cache.acquire(key, serve_params(), counting).entry;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(provider_calls.load(), 1);
  EXPECT_EQ(cache.stats().formats, 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[i].get(), entries[0].get());
  }
}

// -------------------------------------------------------------- engine

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.params = serve_params();
  cfg.provider = tiny_provider();
  return cfg;
}

Request make_request(std::uint64_t id, Format format = Format::kCsr) {
  Request req;
  req.id = id;
  req.tenant = "t0";
  req.matrix = "bcsstk13";
  req.format = format;
  req.k = 4;
  return req;
}

TEST(ServeEngine, CompletesEverySubmittedRequest) {
  ServeEngine engine(engine_config());
  ServeEngine::Producer& producer = engine.add_producer();
  engine.start();
  for (std::uint64_t id = 1; id <= 10; ++id) {
    producer.submit(make_request(id));
  }
  engine.drain();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.failed, 0u);
  const auto outcomes = engine.outcomes();
  ASSERT_EQ(outcomes.size(), 10u);
  std::set<std::uint64_t> ids;
  for (const RequestOutcome& o : outcomes) {
    EXPECT_EQ(o.status, RequestStatus::kOk);
    EXPECT_GE(o.latency_ms, 0.0);
    ids.insert(o.id);
  }
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_GT(stats.cache.hits + stats.cache.misses, 0u);
}

TEST(ServeEngine, BatchingCoalescesSameKeyRequests) {
  EngineConfig cfg = engine_config();
  cfg.max_batch = 4;
  ServeEngine engine(cfg);
  ServeEngine::Producer& producer = engine.add_producer();
  // Queue all four before the dispatcher starts so one sweep sees them.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    producer.submit(make_request(id));
  }
  engine.start();
  engine.drain();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_batch(), 4.0);
  // One formatting paid for the whole batch.
  EXPECT_EQ(stats.cache.formats, 1u);
}

TEST(ServeEngine, ExpiredDeadlineYieldsTypedOutcome) {
  ServeEngine engine(engine_config());
  ServeEngine::Producer& producer = engine.add_producer();
  Request req = make_request(1);
  req.deadline_ms = 1e-6;  // expires before triage can possibly run
  producer.submit(std::move(req));
  engine.start();
  engine.drain();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 0u);
  const auto outcomes = engine.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, RequestStatus::kExpired);
  EXPECT_EQ(outcomes[0].error_code, names::errc::kServeDeadline);
}

TEST(ServeEngine, InjectedDeadlineFaultExpiresRequests) {
  EngineConfig cfg = engine_config();
  cfg.faults = resilience::FaultInjector::parse(
      std::string(names::site::kServeDeadline) + "@always", 42);
  ServeEngine engine(cfg);
  ServeEngine::Producer& producer = engine.add_producer();
  for (std::uint64_t id = 1; id <= 3; ++id) {
    producer.submit(make_request(id));
  }
  engine.start();
  engine.drain();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.expired, 3u);
  EXPECT_EQ(stats.completed, 0u);
  for (const RequestOutcome& o : engine.outcomes()) {
    EXPECT_EQ(o.error_code, names::errc::kServeDeadline);
  }
}

TEST(ServeEngine, RejectAdmissionThrowsTypedErrorWhenFull) {
  EngineConfig cfg = engine_config();
  cfg.queue_capacity = 2;
  cfg.admission = Admission::kReject;
  ServeEngine engine(cfg);
  ServeEngine::Producer& producer = engine.add_producer();
  // Dispatcher not started: the ring fills deterministically.
  producer.submit(make_request(1));
  producer.submit(make_request(2));
  EXPECT_THROW(producer.submit(make_request(3)), QueueFullError);

  engine.start();
  engine.drain();
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
  bool saw_rejection = false;
  for (const RequestOutcome& o : engine.outcomes()) {
    if (o.status == RequestStatus::kRejected) {
      saw_rejection = true;
      EXPECT_EQ(o.error_code, names::errc::kServeQueueFull);
    }
  }
  EXPECT_TRUE(saw_rejection);
}

TEST(ServeEngine, SubmitAfterDrainThrowsShutdown) {
  ServeEngine engine(engine_config());
  ServeEngine::Producer& producer = engine.add_producer();
  engine.start();
  producer.submit(make_request(1));
  engine.drain();
  EXPECT_TRUE(engine.draining());
  EXPECT_THROW(producer.submit(make_request(2)), ShutdownError);
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST(ServeEngine, ColdModeStillCompletes) {
  EngineConfig cfg = engine_config();
  cfg.cache_enabled = false;
  cfg.batch_enabled = false;
  ServeEngine engine(cfg);
  ServeEngine::Producer& producer = engine.add_producer();
  engine.start();
  for (std::uint64_t id = 1; id <= 4; ++id) {
    producer.submit(make_request(id));
  }
  engine.drain();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 4u);
  // No coalescing: one single-request batch each, no cache traffic.
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
}

}  // namespace
}  // namespace spmm::serve
