// Shared helpers for the test suite.
#pragma once

#include <cstdint>

#include "formats/convert.hpp"
#include "gen/generator.hpp"

namespace spmm::testutil {

using CooD = Coo<double, std::int32_t>;

/// Deterministic random matrix with scattered placement.
inline CooD random_coo(std::int64_t rows, std::int64_t cols, double avg_nnz,
                       std::uint64_t seed = 1,
                       gen::Placement placement = gen::Placement::kScattered) {
  gen::MatrixSpec spec;
  spec.name = "random";
  spec.rows = rows;
  spec.cols = cols;
  spec.row_dist.kind = gen::RowDist::kNormal;
  spec.row_dist.mean = avg_nnz;
  spec.row_dist.spread = avg_nnz / 2.0;
  spec.row_dist.max_nnz = static_cast<std::int64_t>(avg_nnz * 4) + 1;
  spec.row_dist.force_max_row = false;
  spec.placement.kind = placement;
  spec.seed = seed;
  return gen::generate<double, std::int32_t>(spec);
}

/// A small handmade matrix with known structure:
///   [ 1 0 2 0 ]
///   [ 0 0 0 0 ]
///   [ 0 3 0 0 ]
///   [ 4 0 5 6 ]
inline CooD small_coo() {
  AlignedVector<std::int32_t> r = {0, 0, 2, 3, 3, 3};
  AlignedVector<std::int32_t> c = {0, 2, 1, 0, 2, 3};
  AlignedVector<double> v = {1, 2, 3, 4, 5, 6};
  return CooD(4, 4, std::move(r), std::move(c), std::move(v));
}

}  // namespace spmm::testutil
