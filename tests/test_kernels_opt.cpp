// Tests for the Study 9 manually optimized kernels and the SpMV paths.
// The optimized kernels must be bit-compatible with the plain kernels
// for every k in the template instantiation set and for fallback widths.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_coo.hpp"
#include "kernels/spmm_csr.hpp"
#include "kernels/spmm_ell.hpp"
#include "kernels/spmm_fixed_k.hpp"
#include "kernels/spmv.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

class FixedKTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(70, 70, 5.0, 31, gen::Placement::kClustered);
    Rng rng(3);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(GetParam()));
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(GetParam()));
  }

  CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_P(FixedKTest, CsrSerialOpt) {
  spmm_csr_serial_opt(to_csr(a_), b_, c_);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, CsrParallelOpt) {
  spmm_csr_parallel_opt(to_csr(a_), b_, c_, 4);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, EllSerialOpt) {
  spmm_ell_serial_opt(to_ell(a_), b_, c_);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, EllParallelOpt) {
  spmm_ell_parallel_opt(to_ell(a_), b_, c_, 4);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, CooSerialOpt) {
  spmm_coo_serial_opt(a_, b_, c_);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, CooParallelOpt) {
  spmm_coo_parallel_opt(a_, b_, c_, 4);
  EXPECT_LE(max_abs_diff(expected_, c_), kTol);
}

TEST_P(FixedKTest, OptimizedBitIdenticalToPlain) {
  // Same operation order ⇒ identical floating-point results, not merely
  // close ones.
  const auto csr = to_csr(a_);
  Dense<double> plain(c_.rows(), c_.cols());
  spmm_csr_serial(csr, b_, plain);
  spmm_csr_serial_opt(csr, b_, c_);
  EXPECT_EQ(plain, c_);
}

// The instantiation set {8,...,512} plus fallback widths (7, 100, 513).
INSTANTIATE_TEST_SUITE_P(KValues, FixedKTest,
                         ::testing::Values(7, 8, 16, 32, 64, 100, 128, 256,
                                           512, 513),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// The k-tiled + nnz-scheduled kernels never reorder a row's per-element
// accumulation, so they must be *bit-identical* to the serial reference
// — EXPECT_EQ, no tolerance — across ragged k (tile tails of every
// shape) and both operand layouts.
class RaggedKTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(83, 61, 6.0, 47);
    Rng rng(7);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(GetParam()));
    b_.fill_random(rng);
    bt_ = b_.transposed();
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(GetParam()));
    ref_ = Dense<double>(c_.rows(), c_.cols());
  }

  void expect_bits_equal(const char* what) {
    for (usize i = 0; i < c_.size(); ++i) {
      ASSERT_EQ(ref_.data()[i], c_.data()[i]) << what << " element " << i;
    }
  }

  CooD a_;
  Dense<double> b_, bt_, c_, ref_;
};

TEST_P(RaggedKTest, CsrNnzSchedBitIdentical) {
  const auto csr = to_csr(a_);
  spmm_csr_serial(csr, b_, ref_);
  for (int t : {1, 3, 5}) {
    c_.fill(-7.0);
    spmm_csr_parallel(csr, b_, c_, t, Sched::kNnz);
    expect_bits_equal("csr nnz");
  }
}

TEST_P(RaggedKTest, CsrNnzSchedTransposeBitIdentical) {
  const auto csr = to_csr(a_);
  spmm_csr_serial_transpose(csr, bt_, ref_);
  for (int t : {1, 3, 5}) {
    c_.fill(-7.0);
    spmm_csr_parallel_transpose(csr, bt_, c_, t, Sched::kNnz);
    expect_bits_equal("csr nnz T");
  }
}

TEST_P(RaggedKTest, EllNnzSchedBitIdentical) {
  const auto ell = to_ell(a_);
  spmm_ell_serial(ell, b_, ref_);
  c_.fill(-7.0);
  spmm_ell_parallel(ell, b_, c_, 4, Sched::kNnz);
  expect_bits_equal("ell nnz");
}

TEST_P(RaggedKTest, EllNnzSchedTransposeBitIdentical) {
  const auto ell = to_ell(a_);
  spmm_ell_serial_transpose(ell, bt_, ref_);
  c_.fill(-7.0);
  spmm_ell_parallel_transpose(ell, bt_, c_, 4, Sched::kNnz);
  expect_bits_equal("ell nnz T");
}

TEST_P(RaggedKTest, CsrOptNnzSchedBitIdenticalToSerialOpt) {
  const auto csr = to_csr(a_);
  spmm_csr_serial_opt(csr, b_, ref_);
  c_.fill(-7.0);
  spmm_csr_parallel_opt(csr, b_, c_, 4, Sched::kNnz);
  expect_bits_equal("csr-opt nnz");
}

// Ragged widths around the microkernel tiles: 1 and 3 (below the half
// tile), 8 (exactly one full tile), 37 (4 full tiles + half tile + 1).
INSTANTIATE_TEST_SUITE_P(RaggedK, RaggedKTest, ::testing::Values(1, 3, 8, 37),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(FixedKDispatch, HitsExactlyTheInstantiationSet) {
  for (int k : kFixedKValues) {
    bool called = false;
    const bool hit = detail::dispatch_fixed_k(
        static_cast<usize>(k), [&](auto kc) {
          called = true;
          EXPECT_EQ(decltype(kc)::value, k);
        });
    EXPECT_TRUE(hit);
    EXPECT_TRUE(called);
  }
  for (usize k : {0u, 1u, 9u, 127u, 1024u}) {
    EXPECT_FALSE(detail::dispatch_fixed_k(k, [](auto) { FAIL(); }));
  }
}

// --- SpMV (§6.3.4) ---

class SpmvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = testutil::random_coo(90, 90, 6.0, 61);
    Rng rng(5);
    x_.resize(static_cast<usize>(a_.cols()));
    for (auto& v : x_) v = rng.uniform(-1.0, 1.0);
    // Oracle: SpMM with k=1.
    Dense<double> b(static_cast<usize>(a_.cols()), 1);
    for (usize i = 0; i < x_.size(); ++i) b.at(i, 0) = x_[i];
    const auto c = spmm_reference(a_, b);
    expected_.resize(static_cast<usize>(a_.rows()));
    for (usize i = 0; i < expected_.size(); ++i) expected_[i] = c.at(i, 0);
    y_.assign(expected_.size(), -1.0);
  }

  void expect_match(const char* what) {
    for (usize i = 0; i < y_.size(); ++i) {
      ASSERT_NEAR(y_[i], expected_[i], kTol) << what << " row " << i;
    }
  }

  CooD a_;
  std::vector<double> x_, y_, expected_;
};

TEST_F(SpmvTest, Coo) {
  spmv_coo(a_, x_, y_);
  expect_match("coo");
}

TEST_F(SpmvTest, Csr) {
  spmv_csr(to_csr(a_), x_, y_);
  expect_match("csr");
}

TEST_F(SpmvTest, CsrParallel) {
  spmv_csr_parallel(to_csr(a_), x_, y_, 4);
  expect_match("csr parallel");
}

TEST_F(SpmvTest, CooParallel) {
  spmv_coo_parallel(a_, x_, y_, 4);
  expect_match("coo parallel");
}

TEST_F(SpmvTest, EllParallel) {
  spmv_ell_parallel(to_ell(a_), x_, y_, 4);
  expect_match("ell parallel");
}

TEST_F(SpmvTest, Ell) {
  spmv_ell(to_ell(a_), x_, y_);
  expect_match("ell");
}

TEST_F(SpmvTest, Bcsr) {
  for (std::int32_t b : {2, 4, 7}) {
    y_.assign(y_.size(), -1.0);
    spmv_bcsr(to_bcsr(a_, b), x_, y_);
    expect_match("bcsr");
  }
}

TEST_F(SpmvTest, SizeMismatchThrows) {
  std::vector<double> short_x(3);
  EXPECT_THROW(spmv_coo(a_, short_x, y_), Error);
  std::vector<double> short_y(3);
  EXPECT_THROW(spmv_csr(to_csr(a_), x_, short_y), Error);
}

}  // namespace
}  // namespace spmm
