// Tests for the persistent device plan and the fixed-block BCSR kernel.
#include <gtest/gtest.h>

#include "kernels/device_plan.hpp"
#include "kernels/dense_ref.hpp"
#include "kernels/spmm_bcsr.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-10;

TEST(DevicePlan, ExecuteMatchesReference) {
  const CooD m = testutil::random_coo(80, 90, 5.0, 41);
  const auto csr = to_csr(m);
  Rng rng(4);
  Dense<double> b(static_cast<usize>(m.cols()), 16);
  b.fill_random(rng);
  const auto expected = spmm_reference(m, b);
  Dense<double> c(static_cast<usize>(m.rows()), 16);

  dev::DeviceArena arena;
  CsrDevicePlan<double, std::int32_t> plan(arena, csr, 16);
  plan.execute(b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol);
  // Re-execution with the same B (resident path) reproduces the result.
  c.fill(-1.0);
  plan.execute_resident(c);
  EXPECT_LE(max_abs_diff(expected, c), kTol);
}

TEST(DevicePlan, AmortizesMatrixTransfers) {
  const CooD m = testutil::random_coo(100, 100, 6.0, 42);
  const auto csr = to_csr(m);
  Rng rng(5);
  Dense<double> b(100, 8);
  b.fill_random(rng);
  Dense<double> c(100, 8);

  dev::DeviceArena arena;
  CsrDevicePlan<double, std::int32_t> plan(arena, csr, 8);
  const std::size_t h2d_after_build = arena.h2d_bytes();
  EXPECT_GT(h2d_after_build, 0u);  // A uploaded once

  plan.execute(b, c);
  const std::size_t per_call = arena.h2d_bytes() - h2d_after_build;
  EXPECT_EQ(per_call, b.size() * sizeof(double));  // only B moves

  // Ten more calls: H2D grows by exactly 10×B, never re-uploading A.
  for (int i = 0; i < 10; ++i) plan.execute(b, c);
  EXPECT_EQ(arena.h2d_bytes(), h2d_after_build + 11 * per_call);

  // The resident path moves nothing in.
  const std::size_t before = arena.h2d_bytes();
  plan.execute_resident(c);
  EXPECT_EQ(arena.h2d_bytes(), before);
}

TEST(DevicePlan, ShapeAndWidthValidated) {
  const CooD m = testutil::random_coo(30, 30, 3.0, 43);
  const auto csr = to_csr(m);
  dev::DeviceArena arena;
  CsrDevicePlan<double, std::int32_t> plan(arena, csr, 8);
  Dense<double> wrong_b(30, 4);  // wrong k
  Dense<double> c(30, 8);
  EXPECT_THROW(plan.execute(wrong_b, c), Error);
  Dense<double> wrong_c(30, 4);
  EXPECT_THROW(plan.execute_resident(wrong_c), Error);
}

TEST(DevicePlan, RespectsArenaCapacity) {
  const CooD m = testutil::random_coo(200, 200, 8.0, 44);
  const auto csr = to_csr(m);
  dev::DeviceArena tiny(4 * 1024);
  EXPECT_THROW((CsrDevicePlan<double, std::int32_t>(tiny, csr, 64)),
               dev::DeviceOutOfMemory);
}

class FixedBlockBcsrTest : public ::testing::TestWithParam<int> {};

TEST_P(FixedBlockBcsrTest, BitIdenticalToGeneric) {
  // Shapes chosen so edge tiles exist (rows/cols not multiples of b).
  for (std::int64_t n : {61, 64, 97}) {
    const CooD m = testutil::random_coo(n, n, 6.0, 45,
                                        gen::Placement::kClustered);
    const auto bcsr = to_bcsr(m, static_cast<std::int32_t>(GetParam()));
    Rng rng(6);
    Dense<double> b(static_cast<usize>(n), 8);
    b.fill_random(rng);
    Dense<double> generic(static_cast<usize>(n), 8);
    Dense<double> fixed(static_cast<usize>(n), 8);
    spmm_bcsr_serial(bcsr, b, generic);
    spmm_bcsr_serial_fixed(bcsr, b, fixed);
    EXPECT_EQ(generic, fixed) << "n=" << n;
  }
}

// 2/4/8 hit the template path; 3 exercises the generic fallback.
INSTANTIATE_TEST_SUITE_P(Blocks, FixedBlockBcsrTest,
                         ::testing::Values(2, 3, 4, 8),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace spmm
