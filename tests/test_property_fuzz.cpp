// Property-based fuzz suite: for randomly generated matrices across many
// seeds and shapes, every format must (a) survive a COO round trip
// unchanged and (b) produce the same SpMM result as every other format.
// This is the cross-format consistency net — any divergence between two
// kernels' mathematics, padding handling, or partitioning shows up here.
#include <gtest/gtest.h>

#include "kernels/dense_ref.hpp"
#include "kernels/spmm_bcsr.hpp"
#include "kernels/spmm_bell.hpp"
#include "kernels/spmm_coo.hpp"
#include "kernels/spmm_csc.hpp"
#include "kernels/spmm_csr.hpp"
#include "kernels/spmm_csr5.hpp"
#include "kernels/spmm_ell.hpp"
#include "kernels/spmm_fixed_k.hpp"
#include "kernels/spmm_hyb.hpp"
#include "kernels/spmm_sellc.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-9;

struct FuzzCase {
  std::uint64_t seed;
  std::int64_t rows;
  std::int64_t cols;
  double avg;
  gen::Placement placement;
  int k;
};

CooD make_matrix(const FuzzCase& fc) {
  gen::MatrixSpec spec;
  spec.name = "fuzz";
  spec.rows = fc.rows;
  spec.cols = fc.cols;
  spec.row_dist.kind = gen::RowDist::kLogNormal;
  spec.row_dist.mean = fc.avg;
  spec.row_dist.spread = 0.8;
  spec.row_dist.max_nnz = std::min<std::int64_t>(
      fc.cols, static_cast<std::int64_t>(fc.avg * 8) + 1);
  spec.row_dist.force_max_row = (fc.seed % 2) == 0;
  spec.placement.kind = fc.placement;
  spec.seed = fc.seed;
  return gen::generate<double, std::int32_t>(spec);
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {
 protected:
  void SetUp() override {
    const auto& fc = GetParam();
    a_ = make_matrix(fc);
    Rng rng(fc.seed ^ 0xb0b);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(fc.k));
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(fc.k));
  }

  void check(const char* what) {
    ASSERT_LE(max_abs_diff(expected_, c_), kTol) << what;
    c_.fill(-7.0);
  }

  CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_P(FuzzTest, RoundTripsPreserveTheMatrix) {
  EXPECT_EQ(to_coo(to_csr(a_)), a_);
  EXPECT_EQ(to_coo(to_csc(a_)), a_);
  EXPECT_EQ(to_coo(to_ell(a_)), a_);
  for (std::int32_t b : {2, 5}) {
    EXPECT_EQ(to_coo(to_bcsr(a_, b)), a_) << "bcsr " << b;
  }
  EXPECT_EQ(to_coo(to_bell(a_, 16)), a_);
  EXPECT_EQ(to_coo(to_sellc(a_, 8, 32)), a_);
  EXPECT_EQ(to_coo(to_hyb(a_)), a_);
  EXPECT_EQ(to_coo(to_csr5(a_, 32)), a_);
}

TEST_P(FuzzTest, EveryFormatComputesTheSameProduct) {
  spmm_coo_serial(a_, b_, c_);
  check("coo");
  spmm_csr_serial(to_csr(a_), b_, c_);
  check("csr");
  spmm_csc_serial(to_csc(a_), b_, c_);
  check("csc");
  spmm_ell_serial(to_ell(a_), b_, c_);
  check("ell");
  spmm_bcsr_serial(to_bcsr(a_, 3), b_, c_);
  check("bcsr");
  spmm_bell_serial(to_bell(a_, 16), b_, c_);
  check("bell");
  spmm_sellc_serial(to_sellc(a_, 8, 32), b_, c_);
  check("sellc");
  spmm_hyb_serial(to_hyb(a_), b_, c_);
  check("hyb");
  spmm_csr5_serial(to_csr5(a_, 32), b_, c_);
  check("csr5");
}

TEST_P(FuzzTest, ParallelKernelsAgreeWithSerial) {
  const int threads = 3;
  spmm_coo_parallel(a_, b_, c_, threads);
  check("coo omp");
  spmm_csr_parallel(to_csr(a_), b_, c_, threads);
  check("csr omp");
  spmm_csc_parallel(to_csc(a_), b_, c_, threads);
  check("csc omp");
  spmm_ell_parallel(to_ell(a_), b_, c_, threads);
  check("ell omp");
  spmm_bcsr_parallel(to_bcsr(a_, 3), b_, c_, threads);
  check("bcsr omp");
  spmm_hyb_parallel(to_hyb(a_), b_, c_, threads);
  check("hyb omp");
  spmm_csr5_parallel(to_csr5(a_, 32), b_, c_, threads);
  check("csr5 omp");
}

TEST_P(FuzzTest, OptimizedKernelsAgree) {
  spmm_csr_serial_opt(to_csr(a_), b_, c_);
  check("csr opt");
  spmm_coo_serial_opt(a_, b_, c_);
  check("coo opt");
  spmm_ell_serial_opt(to_ell(a_), b_, c_);
  check("ell opt");
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  const gen::Placement placements[] = {gen::Placement::kScattered,
                                       gen::Placement::kBanded,
                                       gen::Placement::kClustered};
  const std::pair<std::int64_t, std::int64_t> shapes[] = {
      {31, 31}, {64, 128}, {128, 64}, {97, 101}};
  const int ks[] = {1, 7, 16};
  std::uint64_t seed = 1000;
  for (auto placement : placements) {
    for (auto [rows, cols] : shapes) {
      for (int k : ks) {
        cases.push_back({++seed, rows, cols, 4.0, placement, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           const auto& fc = info.param;
                           return "s" + std::to_string(fc.seed) + "_" +
                                  std::to_string(fc.rows) + "x" +
                                  std::to_string(fc.cols) + "_k" +
                                  std::to_string(fc.k);
                         });

}  // namespace
}  // namespace spmm
