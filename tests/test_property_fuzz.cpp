// Property-based fuzz suite: for randomly generated matrices across many
// seeds and shapes, every format must (a) survive a COO round trip
// unchanged and (b) produce the same SpMM result as every other format.
// This is the cross-format consistency net — any divergence between two
// kernels' mathematics, padding handling, or partitioning shows up here.
#include <gtest/gtest.h>

#include <iostream>

#include "audit/audit.hpp"
#include "kernels/dense_ref.hpp"
#include "kernels/spmm_bcsr.hpp"
#include "kernels/spmm_bell.hpp"
#include "kernels/spmm_coo.hpp"
#include "kernels/spmm_csc.hpp"
#include "kernels/spmm_csr.hpp"
#include "kernels/spmm_csr5.hpp"
#include "kernels/spmm_ell.hpp"
#include "kernels/spmm_fixed_k.hpp"
#include "kernels/spmm_hyb.hpp"
#include "kernels/spmm_sellc.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using testutil::CooD;
constexpr double kTol = 1e-9;

struct FuzzCase {
  std::uint64_t seed;
  std::int64_t rows;
  std::int64_t cols;
  double avg;
  gen::Placement placement;
  int k;
};

CooD make_matrix(const FuzzCase& fc) {
  gen::MatrixSpec spec;
  spec.name = "fuzz";
  spec.rows = fc.rows;
  spec.cols = fc.cols;
  spec.row_dist.kind = gen::RowDist::kLogNormal;
  spec.row_dist.mean = fc.avg;
  spec.row_dist.spread = 0.8;
  spec.row_dist.max_nnz = std::min<std::int64_t>(
      fc.cols, static_cast<std::int64_t>(fc.avg * 8) + 1);
  spec.row_dist.force_max_row = (fc.seed % 2) == 0;
  spec.placement.kind = fc.placement;
  spec.seed = fc.seed;
  return gen::generate<double, std::int32_t>(spec);
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {
 protected:
  void SetUp() override {
    const auto& fc = GetParam();
    a_ = make_matrix(fc);
    Rng rng(fc.seed ^ 0xb0b);
    b_ = Dense<double>(static_cast<usize>(a_.cols()),
                       static_cast<usize>(fc.k));
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()),
                       static_cast<usize>(fc.k));
  }

  void check(const char* what) {
    ASSERT_LE(max_abs_diff(expected_, c_), kTol) << what;
    c_.fill(-7.0);
  }

  CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_P(FuzzTest, RoundTripsPreserveTheMatrix) {
  EXPECT_EQ(to_coo(to_csr(a_)), a_);
  EXPECT_EQ(to_coo(to_csc(a_)), a_);
  EXPECT_EQ(to_coo(to_ell(a_)), a_);
  for (std::int32_t b : {2, 5}) {
    EXPECT_EQ(to_coo(to_bcsr(a_, b)), a_) << "bcsr " << b;
  }
  EXPECT_EQ(to_coo(to_bell(a_, 16)), a_);
  EXPECT_EQ(to_coo(to_sellc(a_, 8, 32)), a_);
  EXPECT_EQ(to_coo(to_hyb(a_)), a_);
  EXPECT_EQ(to_coo(to_csr5(a_, 32)), a_);
}

TEST_P(FuzzTest, EveryFormatComputesTheSameProduct) {
  spmm_coo_serial(a_, b_, c_);
  check("coo");
  spmm_csr_serial(to_csr(a_), b_, c_);
  check("csr");
  spmm_csc_serial(to_csc(a_), b_, c_);
  check("csc");
  spmm_ell_serial(to_ell(a_), b_, c_);
  check("ell");
  spmm_bcsr_serial(to_bcsr(a_, 3), b_, c_);
  check("bcsr");
  spmm_bell_serial(to_bell(a_, 16), b_, c_);
  check("bell");
  spmm_sellc_serial(to_sellc(a_, 8, 32), b_, c_);
  check("sellc");
  spmm_hyb_serial(to_hyb(a_), b_, c_);
  check("hyb");
  spmm_csr5_serial(to_csr5(a_, 32), b_, c_);
  check("csr5");
}

TEST_P(FuzzTest, ParallelKernelsAgreeWithSerial) {
  const int threads = 3;
  spmm_coo_parallel(a_, b_, c_, threads);
  check("coo omp");
  spmm_csr_parallel(to_csr(a_), b_, c_, threads);
  check("csr omp");
  spmm_csc_parallel(to_csc(a_), b_, c_, threads);
  check("csc omp");
  spmm_ell_parallel(to_ell(a_), b_, c_, threads);
  check("ell omp");
  spmm_bcsr_parallel(to_bcsr(a_, 3), b_, c_, threads);
  check("bcsr omp");
  spmm_hyb_parallel(to_hyb(a_), b_, c_, threads);
  check("hyb omp");
  spmm_csr5_parallel(to_csr5(a_, 32), b_, c_, threads);
  check("csr5 omp");
}

TEST_P(FuzzTest, StructuralAuditIsCleanOnEveryFormat) {
  // The analyzer runs over every conversion path of the fuzzed matrix:
  // no generated structure may trip a rule, and no roundtrip may lose
  // entries. This is the fuzz-shaped mirror of the spmm_audit CLI gate.
  audit::AuditReport report;
  audit::audit_conversions(a_, report, "fuzz");
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warning_count(), 0u);
  if (!report.ok()) print_report(std::cerr, report);
}

TEST_P(FuzzTest, OptimizedKernelsAgree) {
  spmm_csr_serial_opt(to_csr(a_), b_, c_);
  check("csr opt");
  spmm_coo_serial_opt(a_, b_, c_);
  check("coo opt");
  spmm_ell_serial_opt(to_ell(a_), b_, c_);
  check("ell opt");
}

// Adversarial edge matrices the generator's distributions never produce:
// degenerate shapes and pathological row profiles that stress padding,
// chunking, and empty-row handling in every converter.
std::vector<std::pair<std::string, CooD>> edge_matrices() {
  std::vector<std::pair<std::string, CooD>> out;
  out.emplace_back("all_empty_rows", CooD(7, 5));
  out.emplace_back("zero_rows", CooD(0, 9));
  out.emplace_back("zero_cols", CooD(9, 0));
  {
    // One fully dense row in an otherwise sparse matrix: ELL width jumps
    // to cols, HYB spills, SELL-C gets one heavy chunk.
    AlignedVector<std::int32_t> r, c;
    AlignedVector<double> v;
    for (std::int32_t j = 0; j < 12; ++j) {
      r.push_back(3);
      c.push_back(j);
      v.push_back(j + 1.0);
    }
    r.push_back(0);
    c.push_back(5);
    v.push_back(99.0);
    out.emplace_back("one_dense_row", CooD(9, 12, std::move(r), std::move(c),
                                           std::move(v)));
  }
  {
    // Single-column matrix: every format degenerates to width/chunk 1.
    AlignedVector<std::int32_t> r = {0, 3, 4, 6};
    AlignedVector<std::int32_t> c = {0, 0, 0, 0};
    AlignedVector<double> v = {1, 2, 3, 4};
    out.emplace_back("single_column",
                     CooD(7, 1, std::move(r), std::move(c), std::move(v)));
  }
  return out;
}

class EdgeMatrixTest
    : public ::testing::TestWithParam<std::pair<std::string, CooD>> {};

TEST_P(EdgeMatrixTest, RoundTripsAndAuditStayClean) {
  const CooD& m = GetParam().second;
  EXPECT_EQ(to_coo(to_csr(m)), m);
  EXPECT_EQ(to_coo(to_csc(m)), m);
  EXPECT_EQ(to_coo(to_ell(m)), m);
  EXPECT_EQ(to_coo(to_bcsr(m, 2)), m);
  EXPECT_EQ(to_coo(to_bell(m, 4)), m);
  EXPECT_EQ(to_coo(to_sellc(m, 4, 8)), m);
  EXPECT_EQ(to_coo(to_hyb(m)), m);
  if (m.nnz() > 0) {
    EXPECT_EQ(to_coo(to_csr5(m, 8)), m);
  }

  audit::AuditReport report;
  audit::audit_conversions(m, report, GetParam().first);
  EXPECT_TRUE(report.ok());
  if (!report.ok()) print_report(std::cerr, report);
}

TEST_P(EdgeMatrixTest, KernelsAgreeWithTheReference) {
  const CooD& m = GetParam().second;
  const int k = 5;
  Rng rng(7);
  Dense<double> b(static_cast<usize>(m.cols()), static_cast<usize>(k));
  b.fill_random(rng);
  const Dense<double> expected = spmm_reference(m, b);
  Dense<double> c(static_cast<usize>(m.rows()), static_cast<usize>(k));

  spmm_csr_serial(to_csr(m), b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "csr";
  c.fill(-7.0);
  spmm_ell_serial(to_ell(m), b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "ell";
  c.fill(-7.0);
  spmm_sellc_serial(to_sellc(m, 4, 8), b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "sellc";
  c.fill(-7.0);
  spmm_hyb_serial(to_hyb(m), b, c);
  EXPECT_LE(max_abs_diff(expected, c), kTol) << "hyb";
}

INSTANTIATE_TEST_SUITE_P(Edges, EdgeMatrixTest,
                         ::testing::ValuesIn(edge_matrices()),
                         [](const auto& info) { return info.param.first; });

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  const gen::Placement placements[] = {gen::Placement::kScattered,
                                       gen::Placement::kBanded,
                                       gen::Placement::kClustered};
  const std::pair<std::int64_t, std::int64_t> shapes[] = {
      {31, 31}, {64, 128}, {128, 64}, {97, 101}};
  const int ks[] = {1, 7, 16};
  std::uint64_t seed = 1000;
  for (auto placement : placements) {
    for (auto [rows, cols] : shapes) {
      for (int k : ks) {
        cases.push_back({++seed, rows, cols, 4.0, placement, k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           const auto& fc = info.param;
                           return "s" + std::to_string(fc.seed) + "_" +
                                  std::to_string(fc.rows) + "x" +
                                  std::to_string(fc.cols) + "_k" +
                                  std::to_string(fc.k);
                         });

}  // namespace
}  // namespace spmm
