// Tests for the shared execution layer (kernels/sched.hpp): the
// nnz-balanced partitioner, the uniform partitioner, the cache validity
// check, the sched.partition.cover audit rule, and the atomic-free
// slab-reduction kernels. The *Parallel* test names are deliberate:
// they match the TSan preset's test filter, so every slab kernel run
// here is also a data-race gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "audit/rules.hpp"
#include "kernels/dense_ref.hpp"
#include "kernels/sched.hpp"
#include "kernels/spmm_coo.hpp"
#include "kernels/spmm_csc.hpp"
#include "kernels/spmm_csr.hpp"
#include "test_util.hpp"

namespace spmm {
namespace {

using sched::RowPartition;
using testutil::CooD;
constexpr double kTol = 1e-10;

// Sum of nonzeros part p owns, straight off the prefix array.
std::int64_t part_nnz(const std::vector<std::int64_t>& bounds,
                      const AlignedVector<std::int32_t>& prefix, int p) {
  return prefix[static_cast<usize>(bounds[static_cast<usize>(p) + 1])] -
         prefix[static_cast<usize>(bounds[static_cast<usize>(p)])];
}

// Structural invariants every partition must satisfy: parts()+1 bounds,
// starting at 0, non-decreasing, ending at rows.
void expect_covers(const RowPartition& part, std::int64_t rows, int nparts) {
  ASSERT_EQ(part.parts(), nparts);
  EXPECT_EQ(part.rows(), rows);
  EXPECT_EQ(part.bounds.front(), 0);
  EXPECT_EQ(part.bounds.back(), rows);
  for (usize p = 1; p < part.bounds.size(); ++p) {
    EXPECT_LE(part.bounds[p - 1], part.bounds[p]) << "bound " << p;
  }
}

TEST(SchedPartition, EmptyMatrix) {
  const AlignedVector<std::int32_t> prefix = {0};  // rows = 0
  const RowPartition part = sched::partition_rows_balanced(prefix, 4);
  expect_covers(part, 0, 4);
  EXPECT_EQ(part.total_nnz, 0);
  EXPECT_EQ(part.max_part_nnz, 0);
  EXPECT_DOUBLE_EQ(part.max_imbalance(), 1.0);
}

TEST(SchedPartition, AllEmptyRows) {
  const AlignedVector<std::int32_t> prefix(7, 0);  // 6 rows, 0 nnz
  const RowPartition part = sched::partition_rows_balanced(prefix, 3);
  expect_covers(part, 6, 3);
  EXPECT_EQ(part.total_nnz, 0);
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(part_nnz(part.bounds, prefix, p), 0);
  }
}

TEST(SchedPartition, OneDenseRowAmongEmpties) {
  // Row 5 carries all 1000 nonzeros; every other row is empty. The
  // dense row lands in exactly one part; the work cannot be split
  // below max_row_nnz, and coverage must still hold.
  AlignedVector<std::int32_t> prefix(101, 0);
  for (usize r = 6; r <= 100; ++r) prefix[r] = 1000;
  const RowPartition part = sched::partition_rows_balanced(prefix, 8);
  expect_covers(part, 100, 8);
  EXPECT_EQ(part.total_nnz, 1000);
  EXPECT_EQ(part.max_part_nnz, 1000);
  int heavy_parts = 0;
  for (int p = 0; p < 8; ++p) {
    if (part_nnz(part.bounds, prefix, p) > 0) ++heavy_parts;
  }
  EXPECT_EQ(heavy_parts, 1);
}

TEST(SchedPartition, MorePartsThanRows) {
  const AlignedVector<std::int32_t> prefix = {0, 2, 5, 9};  // 3 rows
  const RowPartition part = sched::partition_rows_balanced(prefix, 10);
  expect_covers(part, 3, 10);
  // Every row is owned by exactly one part; surplus parts are empty.
  std::int64_t total = 0;
  for (int p = 0; p < 10; ++p) total += part_nnz(part.bounds, prefix, p);
  EXPECT_EQ(total, 9);
}

TEST(SchedPartition, SinglePartOwnsEverything) {
  const AlignedVector<std::int32_t> prefix = {0, 4, 4, 7};
  const RowPartition part = sched::partition_rows_balanced(prefix, 1);
  expect_covers(part, 3, 1);
  EXPECT_EQ(part.max_part_nnz, 7);
  EXPECT_DOUBLE_EQ(part.max_imbalance(), 1.0);
}

// The partitioner's balance guarantee, over random matrices of every
// generator placement: each part's nonzeros never exceed
// ceil(total/nparts) + max_row_nnz.
TEST(SchedPartition, BalanceBoundProperty) {
  for (auto placement : {gen::Placement::kScattered, gen::Placement::kBanded,
                         gen::Placement::kClustered}) {
    for (int seed : {3, 17, 91}) {
      const CooD m = testutil::random_coo(257, 193, 6.0, seed, placement);
      const auto csr = to_csr(m);
      const auto& prefix = csr.row_ptr();
      std::int64_t max_row = 0;
      for (std::int64_t r = 0; r < csr.rows(); ++r) {
        max_row = std::max<std::int64_t>(
            max_row, csr.row_nnz(static_cast<std::int32_t>(r)));
      }
      for (int nparts : {1, 2, 3, 7, 16, 300}) {
        const RowPartition part =
            sched::partition_rows_balanced(prefix, nparts);
        expect_covers(part, csr.rows(), nparts);
        const std::int64_t ceil_share =
            (part.total_nnz + nparts - 1) / nparts;
        for (int p = 0; p < nparts; ++p) {
          EXPECT_LE(part_nnz(part.bounds, prefix, p), ceil_share + max_row)
              << "placement " << static_cast<int>(placement) << " seed "
              << seed << " nparts " << nparts << " part " << p;
        }
        EXPECT_EQ(part.max_imbalance() >= 1.0 || part.total_nnz == 0, true);
      }
    }
  }
}

TEST(SchedPartition, EvenSplitsRowsUniformly) {
  const RowPartition part = sched::partition_rows_even(10, 4);
  expect_covers(part, 10, 4);
  // 10 rows over 4 parts: sizes differ by at most one.
  for (int p = 0; p < 4; ++p) {
    const std::int64_t size = part.bounds[static_cast<usize>(p) + 1] -
                              part.bounds[static_cast<usize>(p)];
    EXPECT_GE(size, 2);
    EXPECT_LE(size, 3);
  }
  expect_covers(sched::partition_rows_even(0, 3), 0, 3);
}

TEST(SchedPartition, MatchesValidatesCachedPartition) {
  const AlignedVector<std::int32_t> prefix = {0, 2, 5, 9};
  const RowPartition part = sched::partition_rows_balanced(prefix, 2);
  EXPECT_TRUE(sched::partition_matches(&part, 3, 2));
  EXPECT_FALSE(sched::partition_matches(nullptr, 3, 2));
  EXPECT_FALSE(sched::partition_matches(&part, 4, 2));  // wrong rows
  EXPECT_FALSE(sched::partition_matches(&part, 3, 3));  // wrong parts
}

TEST(SchedPartition, RejectsInvalidArguments) {
  const AlignedVector<std::int32_t> prefix = {0, 1};
  EXPECT_THROW(sched::partition_rows_balanced(prefix, 0), Error);
  EXPECT_THROW(
      sched::partition_rows_balanced(AlignedVector<std::int32_t>{}, 2), Error);
  EXPECT_THROW(sched::partition_rows_even(5, 0), Error);
  EXPECT_THROW(sched::partition_rows_even(-1, 2), Error);
}

// ---- the sched.partition.cover audit rule -------------------------------

TEST(SchedAudit, CleanPartitionPasses) {
  const AlignedVector<std::int32_t> prefix = {0, 3, 3, 8, 10};
  const RowPartition part = sched::partition_rows_balanced(prefix, 3);
  audit::AuditReport report;
  audit::audit_partition(part.bounds, part.rows(), report, "test");
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(SchedAudit, CorruptedBoundsFireCoverRule) {
  audit::AuditReport report;
  // Does not start at 0.
  audit::audit_partition({1, 4}, 4, report, "t");
  EXPECT_GT(report.count("sched.partition.cover"), 0u);

  // Decreasing bound (overlap).
  report.clear();
  audit::audit_partition({0, 3, 2, 4}, 4, report, "t");
  EXPECT_GT(report.count("sched.partition.cover"), 0u);

  // Does not end at rows (gap at the top).
  report.clear();
  audit::audit_partition({0, 2, 3}, 4, report, "t");
  EXPECT_GT(report.count("sched.partition.cover"), 0u);

  // Too short to describe even one part.
  report.clear();
  audit::audit_partition({0}, 0, report, "t");
  EXPECT_GT(report.count("sched.partition.cover"), 0u);
}

// ---- atomic-free slab kernels (also the TSan race gate) -----------------

class SlabKernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Scattered placement with a wide row-length spread: equal-nnz entry
    // ranges are guaranteed to split rows across part boundaries.
    a_ = testutil::random_coo(120, 90, 7.0, 29);
    Rng rng(11);
    b_ = Dense<double>(static_cast<usize>(a_.cols()), 33);
    b_.fill_random(rng);
    expected_ = spmm_reference(a_, b_);
    c_ = Dense<double>(static_cast<usize>(a_.rows()), 33);
  }

  CooD a_;
  Dense<double> b_, c_, expected_;
};

TEST_F(SlabKernelTest, CooSlabParallelMatchesReference) {
  for (int t : {1, 2, 3, 7, 16}) {
    c_.fill(-5.0);
    spmm_coo_parallel_slab(a_, b_, c_, t);
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << "threads " << t;
  }
}

TEST_F(SlabKernelTest, CooSlabTransposeParallelMatchesReference) {
  const Dense<double> bt = b_.transposed();
  for (int t : {1, 3, 8}) {
    c_.fill(-5.0);
    spmm_coo_parallel_slab_transpose(a_, bt, c_, t);
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << "threads " << t;
  }
}

TEST_F(SlabKernelTest, CscSlabParallelMatchesReference) {
  const auto csc = to_csc(a_);
  for (int t : {1, 2, 5, 16}) {
    c_.fill(-5.0);
    spmm_csc_parallel_slab(csc, b_, c_, t);
    EXPECT_LE(max_abs_diff(expected_, c_), kTol) << "threads " << t;
  }
}

TEST_F(SlabKernelTest, CscSlabParallelEmptyMatrix) {
  const auto csc = to_csc(CooD(8, 5));
  Dense<double> b(5, 4);
  Dense<double> c(8, 4);
  c.fill(-1.0);
  spmm_csc_parallel_slab(csc, b, c, 4);
  for (usize i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0);
}

TEST_F(SlabKernelTest, CooSlabDeterministicAcrossThreadCounts) {
  // The ordered merge makes the slab kernel's result independent of the
  // thread count (parenthesization is fixed by part order, and the part
  // layout for t threads is deterministic).
  Dense<double> c1(static_cast<usize>(a_.rows()), 33);
  spmm_coo_parallel_slab(a_, b_, c1, 1);
  for (int t : {2, 7}) {
    Dense<double> ct(static_cast<usize>(a_.rows()), 33);
    spmm_coo_parallel_slab(a_, b_, ct, t);
    // Same thread count re-run must be bitwise identical.
    Dense<double> ct2(static_cast<usize>(a_.rows()), 33);
    spmm_coo_parallel_slab(a_, b_, ct2, t);
    for (usize i = 0; i < ct.size(); ++i) {
      EXPECT_EQ(ct.data()[i], ct2.data()[i]) << "i=" << i << " t=" << t;
    }
    // Across thread counts only tolerance equality holds (different
    // part boundaries parenthesize split-row sums differently).
    EXPECT_LE(max_abs_diff(c1, ct), kTol);
  }
}

// CSR under Sched::kNnz is row-aligned, so it must be bit-identical to
// the serial kernel — no tolerance.
TEST_F(SlabKernelTest, CsrNnzSchedParallelBitIdenticalToSerial) {
  const auto csr = to_csr(a_);
  Dense<double> ref(static_cast<usize>(a_.rows()), 33);
  spmm_csr_serial(csr, b_, ref);
  for (int t : {1, 2, 3, 8}) {
    c_.fill(-5.0);
    const RowPartition part =
        sched::partition_rows_balanced(csr.row_ptr(), t);
    spmm_csr_parallel(csr, b_, c_, t, Sched::kNnz, &part);
    for (usize i = 0; i < c_.size(); ++i) {
      EXPECT_EQ(ref.data()[i], c_.data()[i]) << "i=" << i << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace spmm
