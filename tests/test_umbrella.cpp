// The umbrella header must compile standalone and expose the whole API.
// This also demonstrates the §6.3.4 claim that "supporting pure
// matrix-matrix multiplication is theoretically possible in the current
// implementation": a dense GEMM benchmark built on the suite's class.
#include "spmm.hpp"

#include <gtest/gtest.h>

namespace spmm {
namespace {

TEST(Umbrella, CoreSymbolsVisible) {
  // One symbol from each layer proves the header pulled everything in.
  Rng rng(1);
  (void)rng.uniform();
  Coo<double, std::int32_t> coo(3, 3);
  (void)to_csr(coo);
  (void)gen::suite_names();
  (void)model::grace_hopper();
  (void)bench::make_benchmark<double, std::int32_t>(Format::kCsr);
  dev::DeviceArena arena;
  (void)arena.allocated_bytes();
  EXPECT_EQ(format_name(Format::kCsr5), "CSR5");
}

/// Dense GEMM through the benchmark suite (§6.3.4): "format" densifies
/// the sparse input; compute is a straight triple loop. The suite's
/// verification and reporting machinery applies unchanged.
class DenseGemmBenchmark final
    : public bench::SpmmBenchmark<double, std::int32_t> {
 public:
  [[nodiscard]] std::string name() const override { return "dense-GEMM"; }

 protected:
  void do_format() override { dense_a_ = to_dense(coo_); }

  [[nodiscard]] std::size_t do_format_bytes() const override {
    return dense_a_.bytes();
  }

  void do_compute(Variant variant) override {
    SPMM_CHECK(variant == Variant::kSerial,
               "dense demo implements the serial kernel only");
    gemm_reference(dense_a_, b_, c_);
  }

 private:
  Dense<double> dense_a_;
};

TEST(Umbrella, PureGemmThroughTheSuite) {
  gen::MatrixSpec spec;
  spec.name = "gemm";
  spec.rows = spec.cols = 48;
  spec.row_dist.kind = gen::RowDist::kConstant;
  spec.row_dist.mean = 6;
  spec.row_dist.max_nnz = 12;
  spec.placement.kind = gen::Placement::kScattered;
  const auto m = gen::generate<double, std::int32_t>(spec);

  BenchParams params;
  params.iterations = 1;
  params.warmup = 0;
  params.k = 8;
  DenseGemmBenchmark bench;
  bench.setup(m, params, "gemm");
  const auto r = bench.run(Variant::kSerial);
  EXPECT_TRUE(r.verified) << r.max_abs_error;
  EXPECT_EQ(r.kernel_name, "dense-GEMM");
  // A dense 48x48 stores more than the sparse input.
  EXPECT_GT(r.format_bytes, m.bytes());
}

}  // namespace
}  // namespace spmm
