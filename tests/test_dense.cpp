// Tests for the dense operand container.
#include <gtest/gtest.h>

#include "formats/dense.hpp"

namespace spmm {
namespace {

TEST(Dense, ZeroInitialized) {
  Dense<double> d(3, 5);
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 5u);
  EXPECT_EQ(d.size(), 15u);
  for (usize i = 0; i < d.size(); ++i) EXPECT_EQ(d.data()[i], 0.0);
}

TEST(Dense, RowMajorIndexing) {
  Dense<double> d(2, 3);
  d.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(d.data()[1 * 3 + 2], 7.0);
  d.at(0, 0) = -1.0;
  EXPECT_DOUBLE_EQ(d.data()[0], -1.0);
}

TEST(Dense, FillAndRandom) {
  Dense<double> d(4, 4);
  d.fill(2.5);
  for (usize i = 0; i < d.size(); ++i) EXPECT_EQ(d.data()[i], 2.5);
  Rng rng(1);
  d.fill_random(rng);
  bool any_nonzero = false;
  for (usize i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.data()[i], -1.0);
    EXPECT_LT(d.data()[i], 1.0);
    any_nonzero = any_nonzero || d.data()[i] != 0.0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Dense, FillRandomDeterministic) {
  Dense<double> a(5, 7), b(5, 7);
  Rng r1(9), r2(9);
  a.fill_random(r1);
  b.fill_random(r2);
  EXPECT_EQ(a, b);
}

TEST(Dense, TransposeCorrect) {
  // Rectangular shapes exercise the tiled loop's edge handling.
  for (auto [rows, cols] : {std::pair<usize, usize>{3, 5},
                            {64, 64},
                            {65, 33},
                            {1, 100},
                            {100, 1}}) {
    Dense<double> d(rows, cols);
    Rng rng(4);
    d.fill_random(rng);
    const Dense<double> t = d.transposed();
    ASSERT_EQ(t.rows(), cols);
    ASSERT_EQ(t.cols(), rows);
    for (usize r = 0; r < rows; ++r) {
      for (usize c = 0; c < cols; ++c) {
        ASSERT_EQ(t.at(c, r), d.at(r, c)) << rows << "x" << cols;
      }
    }
  }
}

TEST(Dense, DoubleTransposeIsIdentity) {
  Dense<double> d(37, 53);
  Rng rng(6);
  d.fill_random(rng);
  EXPECT_EQ(d.transposed().transposed(), d);
}

TEST(Dense, MaxAbsDiff) {
  Dense<double> a(2, 2), b(2, 2);
  a.at(0, 0) = 1.0;
  b.at(0, 0) = 1.5;
  b.at(1, 1) = -0.25;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
  Dense<double> wrong(2, 3);
  EXPECT_THROW(max_abs_diff(a, wrong), Error);
}

TEST(Dense, BytesAccounting) {
  Dense<float> f(10, 10);
  EXPECT_EQ(f.bytes(), 400u);
  Dense<double> d(10, 10);
  EXPECT_EQ(d.bytes(), 800u);
}

TEST(Dense, EmptyMatrix) {
  Dense<double> d;
  EXPECT_EQ(d.size(), 0u);
  const Dense<double> t = d.transposed();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace spmm
