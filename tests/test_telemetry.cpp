// Tests for the telemetry subsystem: sessions/spans/sinks, the JSONL
// round trip and its schema/pairing validation, trace summarization, the
// benchmark integration (spans, samples, distribution stats, device
// counters, debug routing), and the zero-overhead disabled path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/runner.hpp"
#include "support/stats.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/jsonl.hpp"
#include "telemetry/options.hpp"
#include "telemetry/summary.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace spmm::telemetry {
namespace {

using testutil::CooD;

BenchParams fast_params(int k = 8) {
  BenchParams p;
  p.iterations = 3;
  p.warmup = 1;
  p.threads = 2;
  p.k = k;
  return p;
}

std::size_t count_spans(const std::vector<Event>& events,
                        const std::string& name) {
  std::size_t n = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kSpanEnd && e.name == name) ++n;
  }
  return n;
}

TEST(Session, DisabledSessionIsInert) {
  Session s;
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.begin_span("x"), 0u);
  s.end_span(0, "x", 0);  // id 0 must be ignored
  s.counter("c", 1.0);
  s.sample("s", 0, 1.0);
  s.log("l", "msg");
  s.flush();
}

TEST(Session, ScopedSpanEmitsPairedBeginEnd) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  {
    ScopedSpan span(s, "phase", "cat", "detail", 3);
  }
  const auto events = mem->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_EQ(events[1].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[0].name, "phase");
  EXPECT_EQ(events[1].name, "phase");
  EXPECT_EQ(events[0].category, "cat");
  EXPECT_EQ(events[0].detail, "detail");
  EXPECT_EQ(events[0].iteration, 3);
  EXPECT_NE(events[0].span_id, 0u);
  EXPECT_EQ(events[0].span_id, events[1].span_id);
  EXPECT_GE(events[1].dur_ns, 0);
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
}

TEST(Session, SpanIdsAreUnique) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  const std::uint64_t a = s.begin_span("a");
  const std::uint64_t b = s.begin_span("b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(Session, TeeFansOutToAllChildren) {
  auto m1 = std::make_shared<MemorySink>();
  auto m2 = std::make_shared<MemorySink>();
  Session s(std::make_shared<TeeSink>(
      std::vector<std::shared_ptr<Sink>>{m1, m2}));
  s.counter("c", 2.0, "cat");
  EXPECT_EQ(m1->size(), 1u);
  EXPECT_EQ(m2->size(), 1u);
  EXPECT_EQ(m1->events()[0].value, 2.0);
}

TEST(Jsonl, RoundTripPreservesEveryKind) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    Session s(std::shared_ptr<Sink>(&sink, [](Sink*) {}));
    const std::int64_t t0 = now_ns();
    const std::uint64_t id = s.begin_span("format", "bench", "CSR", -1);
    s.counter("dev.h2d_bytes", 4096.0, "dev");
    s.sample("iteration_seconds", 2, 0.125);
    s.log("debug", "a \"quoted\" line\nwith newline");
    s.end_span(id, "format", t0);
    sink.flush();
  }
  std::istringstream in(os.str());
  const TraceParseResult trace = read_trace(in);
  ASSERT_TRUE(trace.ok()) << (trace.errors.empty() ? "" : trace.errors[0]);
  ASSERT_EQ(trace.events.size(), 5u);

  const Event& begin = trace.events[0];
  EXPECT_EQ(begin.kind, EventKind::kSpanBegin);
  EXPECT_EQ(begin.name, "format");
  EXPECT_EQ(begin.category, "bench");
  EXPECT_EQ(begin.detail, "CSR");

  const Event& counter = trace.events[1];
  EXPECT_EQ(counter.kind, EventKind::kCounter);
  EXPECT_EQ(counter.name, "dev.h2d_bytes");
  EXPECT_DOUBLE_EQ(counter.value, 4096.0);
  EXPECT_EQ(counter.category, "dev");

  const Event& sample = trace.events[2];
  EXPECT_EQ(sample.kind, EventKind::kSample);
  EXPECT_EQ(sample.iteration, 2);
  EXPECT_DOUBLE_EQ(sample.value, 0.125);

  const Event& log = trace.events[3];
  EXPECT_EQ(log.kind, EventKind::kLog);
  EXPECT_EQ(log.detail, "a \"quoted\" line\nwith newline");

  const Event& end = trace.events[4];
  EXPECT_EQ(end.kind, EventKind::kSpanEnd);
  EXPECT_EQ(end.span_id, begin.span_id);
  EXPECT_GE(end.dur_ns, 0);
}

TEST(Jsonl, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
}

TEST(Jsonl, DetectsUnpairedAndMalformedSpans) {
  // End without begin.
  {
    std::istringstream in(
        R"({"ts_ns":1,"kind":"span_end","id":7,"name":"x","dur_ns":1})"
        "\n");
    EXPECT_FALSE(read_trace(in).ok());
  }
  // Begin without end (unclosed at EOF).
  {
    std::istringstream in(
        R"({"ts_ns":1,"kind":"span_begin","id":7,"name":"x"})"
        "\n");
    EXPECT_FALSE(read_trace(in).ok());
  }
  // Name mismatch between begin and end of the same id.
  {
    std::istringstream in(
        R"({"ts_ns":1,"kind":"span_begin","id":7,"name":"x"})"
        "\n"
        R"({"ts_ns":2,"kind":"span_end","id":7,"name":"y","dur_ns":1})"
        "\n");
    EXPECT_FALSE(read_trace(in).ok());
  }
  // Malformed JSON and unknown kind.
  {
    std::istringstream in(
        "not json at all\n"
        R"({"ts_ns":1,"kind":"mystery","name":"x"})"
        "\n");
    const TraceParseResult r = read_trace(in);
    EXPECT_EQ(r.errors.size(), 2u);
  }
  // A valid paired trace passes.
  {
    std::istringstream in(
        R"({"ts_ns":1,"kind":"span_begin","id":7,"name":"x"})"
        "\n"
        R"({"ts_ns":2,"kind":"span_end","id":7,"name":"x","dur_ns":1})"
        "\n");
    EXPECT_TRUE(read_trace(in).ok());
  }
}

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  const std::vector<double> s = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(s, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile(s, 0.95), 3.85);
  const std::vector<double> empty;
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(percentile(empty, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile(one, 0.95), 7.0);
}

TEST(Summarize, AggregatesPhasesCountersAndSlowest) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span(s, "iteration", "bench", "", i);
  }
  {
    ScopedSpan span(s, "format", "bench");
  }
  s.counter("dev.h2d_bytes", 100.0, "dev");
  s.counter("dev.h2d_bytes", 50.0, "dev");
  s.sample("iteration_seconds", 0, 0.5);
  s.log("debug", "x");

  const TraceSummary sum = summarize_trace(mem->events(), 2);
  ASSERT_EQ(sum.phases.size(), 2u);
  EXPECT_EQ(sum.completed_spans, 4u);
  EXPECT_EQ(sum.samples, 1u);
  EXPECT_EQ(sum.logs, 1u);
  EXPECT_DOUBLE_EQ(sum.counter_totals.at("dev.h2d_bytes"), 150.0);
  EXPECT_LE(sum.slowest.size(), 2u);
  std::size_t iteration_count = 0;
  for (const PhaseStat& p : sum.phases) {
    if (p.name == "iteration") iteration_count = p.count;
    EXPECT_GE(p.total_ns, p.max_ns);
  }
  EXPECT_EQ(iteration_count, 3u);
}

TEST(Benchmark, EmitsSpansForEveryPhase) {
  const CooD m = testutil::random_coo(50, 50, 4.0, 31);
  auto mem = std::make_shared<MemorySink>();
  BenchParams p = fast_params();
  p.sink = mem;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "tele");
  EXPECT_TRUE(r.verified);

  const auto events = mem->events();
  EXPECT_EQ(count_spans(events, "setup"), 1u);
  EXPECT_EQ(count_spans(events, "format"), 1u);
  EXPECT_EQ(count_spans(events, "run"), 1u);
  EXPECT_EQ(count_spans(events, "warmup"), 1u);
  EXPECT_EQ(count_spans(events, "iteration"),
            static_cast<std::size_t>(p.iterations));
  EXPECT_EQ(count_spans(events, "verify"), 1u);

  // Per-iteration samples with ascending indices.
  std::size_t samples = 0;
  for (const Event& e : events) {
    if (e.kind != EventKind::kSample) continue;
    EXPECT_EQ(e.name, "iteration_seconds");
    EXPECT_EQ(e.iteration, static_cast<std::int64_t>(samples));
    EXPECT_GT(e.value, 0.0);
    ++samples;
  }
  EXPECT_EQ(samples, static_cast<std::size_t>(p.iterations));

  // Every span in the stream pairs up (the JSONL validator agrees).
  std::ostringstream os;
  JsonlSink jsonl(os);
  for (const Event& e : events) jsonl.consume(e);
  jsonl.flush();
  std::istringstream in(os.str());
  const TraceParseResult trace = read_trace(in);
  EXPECT_TRUE(trace.ok()) << (trace.errors.empty() ? "" : trace.errors[0]);
  EXPECT_EQ(trace.events.size(), events.size());
}

TEST(Benchmark, DistributionStatsMatchHandComputedValues) {
  const CooD m = testutil::random_coo(60, 60, 5.0, 32);
  BenchParams p = fast_params();
  p.iterations = 5;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, p, "dist");

  ASSERT_EQ(r.iteration_seconds.size(), 5u);
  const Summary s = summarize(r.iteration_seconds);
  EXPECT_EQ(r.min_compute_seconds, s.min);
  EXPECT_EQ(r.max_compute_seconds, s.max);
  EXPECT_EQ(r.p50_compute_seconds, s.median);
  EXPECT_EQ(r.stddev_compute_seconds, s.stddev);
  EXPECT_EQ(r.p95_compute_seconds, percentile(r.iteration_seconds, 0.95));
  EXPECT_GE(r.p95_compute_seconds, r.p50_compute_seconds);
  EXPECT_LE(r.p95_compute_seconds, r.max_compute_seconds);
  // avg is the unchanged left-to-right mean of the recorded samples.
  double sum = 0.0;
  for (double x : r.iteration_seconds) sum += x;
  EXPECT_EQ(r.avg_compute_seconds, sum / 5);
  EXPECT_GE(r.outlier_count, 0);
}

// The tier-1 guarantee: with no sink attached, the run loop takes the
// zero-overhead path and the published timing fields are exactly the
// aggregates of the recorded per-iteration samples (same fold order, no
// extra work between Timer reads).
TEST(Benchmark, DisabledTelemetryKeepsTimingFieldsConsistent) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 33);
  BenchParams p = fast_params();
  ASSERT_EQ(p.sink, nullptr);
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCoo, Variant::kSerial, m, p, "plain");
  ASSERT_EQ(r.iteration_seconds.size(),
            static_cast<std::size_t>(p.iterations));
  double sum = 0.0;
  double best = r.iteration_seconds[0];
  for (std::size_t i = 0; i < r.iteration_seconds.size(); ++i) {
    sum += r.iteration_seconds[i];
    if (i > 0) best = std::min(best, r.iteration_seconds[i]);
  }
  EXPECT_EQ(r.avg_compute_seconds, sum / p.iterations);
  EXPECT_EQ(r.min_compute_seconds, best);
  EXPECT_TRUE(std::isfinite(r.mflops));
}

TEST(Benchmark, DeviceRunEmitsTrafficCountersAndByteFields) {
  const CooD m = testutil::random_coo(80, 80, 5.0, 34);
  auto mem = std::make_shared<MemorySink>();
  BenchParams p = fast_params();
  p.sink = mem;
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kDevice, m, p, "dev");
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.h2d_bytes, 0u);
  EXPECT_GT(r.d2h_bytes, 0u);
  EXPECT_GT(r.device_peak_bytes, 0u);

  double alloc = 0.0, h2d = 0.0, d2h = 0.0;
  for (const Event& e : mem->events()) {
    if (e.kind != EventKind::kCounter) continue;
    if (e.name == "dev.alloc_bytes") alloc += e.value;
    if (e.name == "dev.h2d_bytes") h2d += e.value;
    if (e.name == "dev.d2h_bytes") d2h += e.value;
  }
  EXPECT_GT(alloc, 0.0);
  EXPECT_GT(h2d, 0.0);
  EXPECT_GT(d2h, 0.0);
}

TEST(Benchmark, CpuRunReportsNoDeviceTraffic) {
  const CooD m = testutil::random_coo(40, 40, 4.0, 35);
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, m, fast_params(), "cpu");
  EXPECT_EQ(r.h2d_bytes, 0u);
  EXPECT_EQ(r.d2h_bytes, 0u);
}

// Satellite: with a sink attached, --debug output goes into the trace as
// log events — nothing is written to stderr, so debug diagnostics can
// never interleave with (or corrupt) a redirected trace.
TEST(Benchmark, DebugRoutesToSinkInsteadOfStderr) {
  const CooD m = testutil::random_coo(20, 20, 3.0, 36);
  auto mem = std::make_shared<MemorySink>();
  BenchParams p = fast_params();
  p.debug = true;
  p.iterations = 2;
  p.sink = mem;
  testing::internal::CaptureStderr();
  bench::run_benchmark<double, std::int32_t>(Format::kCoo, Variant::kSerial,
                                             m, p, "dbg");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

  std::size_t debug_logs = 0;
  for (const Event& e : mem->events()) {
    if (e.kind == EventKind::kLog && e.name == "debug") {
      EXPECT_NE(e.detail.find("iteration"), std::string::npos);
      ++debug_logs;
    }
  }
  EXPECT_EQ(debug_logs, 2u);
}

// Satellite: the rate guard — an empty matrix yields zero FLOPs and the
// rates must come out finite (0), never inf/NaN.
TEST(Benchmark, DegenerateRunProducesFiniteRates) {
  const CooD empty(8, 8);
  const auto r = bench::run_benchmark<double, std::int32_t>(
      Format::kCsr, Variant::kSerial, empty, fast_params(), "empty");
  EXPECT_TRUE(std::isfinite(r.mflops));
  EXPECT_TRUE(std::isfinite(r.gflops));
  EXPECT_TRUE(std::isfinite(r.flops_per_second));
}

TEST(Options, TraceSetupBuildsSinkStackAndWritesFile) {
  const std::string path = testing::TempDir() + "tel_options_trace.jsonl";
  ArgParser parser("test");
  register_trace_options(parser);
  const char* argv[] = {"prog", "--trace", path.c_str(), "--perf-summary"};
  ASSERT_TRUE(parser.parse(4, argv));
  TraceSetup setup = trace_setup_from_parser(parser);
  ASSERT_TRUE(setup.enabled());
  ASSERT_NE(setup.jsonl, nullptr);
  ASSERT_NE(setup.memory, nullptr);

  Session s(setup.sink);
  {
    ScopedSpan span(s, "format", "bench");
  }
  std::ostringstream os;
  setup.finish(os);
  EXPECT_NE(os.str().find("format"), std::string::npos);
  EXPECT_NE(os.str().find(path), std::string::npos);

  const TraceParseResult trace = read_trace_file(path);
  EXPECT_TRUE(trace.ok()) << (trace.errors.empty() ? "" : trace.errors[0]);
  // Span begin/end plus the appended perf_summary log event — the trace
  // file is self-contained (the memory sink never sees the summary, so
  // it cannot recursively count itself).
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events.back().kind, EventKind::kLog);
  EXPECT_EQ(trace.events.back().name, "perf_summary");
  EXPECT_NE(trace.events.back().detail.find("per-phase"), std::string::npos);
  EXPECT_EQ(setup.memory->size(), 2u);
}

// A trace without --perf-summary still gets the memory collector (for
// the embedded summary event) but prints nothing to stdout.
TEST(Options, TraceWithoutPerfSummaryEmbedsButDoesNotPrint) {
  const std::string path = testing::TempDir() + "tel_options_trace2.jsonl";
  ArgParser parser("test");
  register_trace_options(parser);
  const char* argv[] = {"prog", "--trace", path.c_str()};
  ASSERT_TRUE(parser.parse(3, argv));
  TraceSetup setup = trace_setup_from_parser(parser);
  ASSERT_NE(setup.memory, nullptr);
  EXPECT_FALSE(setup.summary_to_stdout);

  Session s(setup.sink);
  {
    ScopedSpan span(s, "format", "bench");
  }
  std::ostringstream os;
  setup.finish(os);
  EXPECT_EQ(os.str().find("--- telemetry summary ---"), std::string::npos);

  const TraceParseResult trace = read_trace_file(path);
  ASSERT_TRUE(trace.ok()) << (trace.errors.empty() ? "" : trace.errors[0]);
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events.back().name, "perf_summary");
}

// Chrome-trace conversion: every event kind maps to its Trace Event
// Format phase, wrapped in a single traceEvents JSON object.
TEST(ChromeTrace, MapsEveryEventKind) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  const std::int64_t t0 = now_ns();
  const std::uint64_t id = s.begin_span("iteration", "bench", "CSR/serial", 2);
  s.counter("hw.cycles", 12345.0, "hwprof");
  s.sample("iteration_seconds", 2, 0.125);
  s.log("note", "a \"quoted\" detail");
  s.end_span(id, "iteration", t0);

  const std::string json = chrome_trace_json(mem->events());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hw.cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"CSR/serial\""), std::string::npos);
  EXPECT_NE(json.find("\"iteration\":2"), std::string::npos);
  // The log detail must be escaped, not embedded raw.
  EXPECT_NE(json.find("a \\\"quoted\\\" detail"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// Summary counters group under one heading per family; a counter with
// no known prefix lands under "other counters".
TEST(Summary, CountersGroupUnderFamilyHeadings) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  s.counter("hw.cycles", 100.0, "hwprof");
  s.counter("dev.h2d_bytes", 64.0, "dev");
  s.counter("sched.parts", 2.0, "sched");
  s.counter("fault.cell.fail", 1.0, "resilience");
  s.counter("cell.error", 1.0, "resilience");
  s.counter("custom.thing", 7.0);

  std::ostringstream os;
  print_summary(os, summarize_trace(mem->events()));
  const std::string out = os.str();
  EXPECT_NE(out.find("hardware counters (hw.*):"), std::string::npos);
  EXPECT_NE(out.find("device traffic totals:"), std::string::npos);
  EXPECT_NE(out.find("scheduling (sched.*):"), std::string::npos);
  EXPECT_NE(out.find("fault injections (fault.*):"), std::string::npos);
  EXPECT_NE(out.find("failure outcomes (cell.*):"), std::string::npos);
  EXPECT_NE(out.find("other counters:"), std::string::npos);
  EXPECT_NE(out.find("custom.thing"), std::string::npos);
  // Headings appear in family order and each counter under its own.
  EXPECT_LT(out.find("hardware counters"), out.find("device traffic"));
  EXPECT_LT(out.find("device traffic"), out.find("scheduling"));
}

// A trace carrying the roofline ingredient counters plus iteration
// spans yields the roofline section, including the STREAM fraction.
TEST(Summary, RooflineSectionFromHwCounters) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  {
    ScopedSpan span(s, "iteration", "bench", "CSR/serial", 0);
  }
  s.counter("hw.flops", 2e9, "hwprof");
  s.counter("hw.bytes", 1e9, "hwprof");
  s.counter("hw.stream_bw_gbs", 10.0, "hwprof");

  std::ostringstream os;
  print_summary(os, summarize_trace(mem->events()));
  const std::string out = os.str();
  EXPECT_NE(out.find("roofline"), std::string::npos);
  EXPECT_NE(out.find("operational intensity: 2.000 flop/byte"),
            std::string::npos);
  EXPECT_NE(out.find("% of STREAM 10.0 GB/s"), std::string::npos);
}

// Without hw.* counters the roofline section must not appear — the
// summary of an unprofiled trace is unchanged.
TEST(Summary, NoRooflineSectionWithoutHwCounters) {
  auto mem = std::make_shared<MemorySink>();
  Session s(mem);
  {
    ScopedSpan span(s, "iteration", "bench");
  }
  s.counter("dev.h2d_bytes", 64.0, "dev");
  std::ostringstream os;
  print_summary(os, summarize_trace(mem->events()));
  EXPECT_EQ(os.str().find("roofline"), std::string::npos);
}

TEST(Options, NoFlagsMeansDisabled) {
  ArgParser parser("test");
  register_trace_options(parser);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  const TraceSetup setup = trace_setup_from_parser(parser);
  EXPECT_FALSE(setup.enabled());
  EXPECT_EQ(setup.sink, nullptr);
}

}  // namespace
}  // namespace spmm::telemetry
