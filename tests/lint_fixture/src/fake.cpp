// Seeded-violation fixture for spmm_lint (never compiled — ctest runs
// the lint with --root pointing here and asserts on the finding ids).
// Each statement below stages exactly one finding class; the fixture's
// empty reference surface additionally stages every *.unused finding.
#include <string>

struct FakeParser {
  void add_flag(const char* name, int short_name, const char* help);
};

void fake_emissions(FakeParser& parser) {
  std::string counter = "hw.bogus";       // lint.counter.undeclared
  std::string raw = "cell.retry";         // lint.literal.raw (declared name)
  std::string code = "input.bogus";       // lint.error_code.undeclared
  std::string site = "io.bogus";          // lint.site.undeclared
  std::string rule = "csr.bogus.rule";    // lint.rule.undeclared
  std::string serve = "serve.bogus.counter";  // lint.counter.undeclared
  parser.add_flag("bogus-flag", 0, "x");  // lint.flag.undeclared
  (void)counter;
  (void)raw;
  (void)code;
  (void)site;
  (void)rule;
  (void)serve;
}
