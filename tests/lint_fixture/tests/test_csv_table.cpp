// Fixture CSV pin: starts with the expected "matrix,kernel," lead but
// then diverges from the registry column order -> lint.csv.order.
const char* kPinnedHeader = "matrix,kernel,threads,variant";
